//! Kernel workload descriptors.
//!
//! A [`KernelDesc`] is what the host "launches" on the simulated device: a
//! grid of thread blocks, a per-thread instruction mix, and the
//! synchronization structure (Algorithm 1's intra-/inter-block barriers).
//! The hologram-specific builders live in [`crate::hologram_kernels`].

/// Per-thread instruction mix of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InstructionMix {
    /// Single-precision floating-point operations.
    pub flops: f64,
    /// Transcendental operations (sin/cos/exp — the transfer-function math
    /// that LUT-based accelerators like HORN-8 memoize away).
    pub transcendentals: f64,
    /// Global-memory load instructions.
    pub loads: f64,
    /// Global-memory store instructions.
    pub stores: f64,
    /// Fraction of loads going through the read-only (texture/LDG) path —
    /// high for the backward step, which re-reads every plane's results.
    pub read_only_fraction: f64,
    /// Integer/control instructions.
    pub integer_ops: f64,
}

impl InstructionMix {
    /// Total dynamic instruction count per thread (flops counted per op).
    pub fn instructions(&self) -> f64 {
        self.flops + self.transcendentals + self.loads + self.stores + self.integer_ops
    }

    /// Bytes moved per thread assuming 4-byte words per access.
    pub fn bytes(&self) -> f64 {
        4.0 * (self.loads + self.stores)
    }

    /// Validates the mix.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field (negative counts or
    /// an out-of-range read-only fraction).
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("flops", self.flops),
            ("transcendentals", self.transcendentals),
            ("loads", self.loads),
            ("stores", self.stores),
            ("integer_ops", self.integer_ops),
        ];
        for (name, v) in fields {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} must be non-negative and finite"));
            }
        }
        if !(0.0..=1.0).contains(&self.read_only_fraction) {
            return Err("read_only_fraction must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// A kernel launch: grid geometry, instruction mix and synchronization
/// behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel name, used by the profiler to aggregate statistics.
    pub name: String,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Per-thread instruction mix.
    pub mix: InstructionMix,
    /// Intra-block `__syncthreads()`-style barriers per block
    /// (Algorithm 1 Line 6).
    pub intra_block_syncs: u32,
    /// Whether the kernel ends with a device-wide synchronization
    /// (Algorithm 1 Lines 8/13).
    pub inter_block_sync: bool,
    /// L1 hit rate for this kernel's access pattern. The paper measured 99%
    /// for both hologram steps (§3).
    pub l1_hit_rate: f64,
    /// Warp-level load imbalance factor ≥ 1: how much longer the slowest
    /// warp runs than the mean (drives barrier stall time).
    pub imbalance: f64,
    /// Dependency-chain density in [0, 1]: the fraction of arithmetic whose
    /// result is needed by the next instruction (drives execution-dependency
    /// stalls). Streaming accumulation kernels sit near 0; chained butterfly
    /// math sits higher.
    pub dependency_factor: f64,
}

impl KernelDesc {
    /// Creates a kernel descriptor with neutral synchronization defaults.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_gpusim::{InstructionMix, KernelDesc};
    ///
    /// let k = KernelDesc::new("copy", 128, 256, InstructionMix {
    ///     loads: 8.0, stores: 8.0, ..Default::default()
    /// });
    /// assert_eq!(k.total_threads(), 128 * 256);
    /// ```
    pub fn new(name: impl Into<String>, grid_blocks: u32, block_threads: u32, mix: InstructionMix) -> Self {
        KernelDesc {
            name: name.into(),
            grid_blocks,
            block_threads,
            mix,
            intra_block_syncs: 0,
            inter_block_sync: false,
            l1_hit_rate: 0.99,
            imbalance: 1.1,
            dependency_factor: 0.15,
        }
    }

    /// Sets the intra-block barrier count (builder-style).
    pub fn with_intra_syncs(mut self, count: u32) -> Self {
        self.intra_block_syncs = count;
        self
    }

    /// Marks the kernel as ending with a device-wide sync (builder-style).
    pub fn with_inter_sync(mut self) -> Self {
        self.inter_block_sync = true;
        self
    }

    /// Sets the L1 hit rate (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_l1_hit_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "L1 hit rate must be in [0, 1]");
        self.l1_hit_rate = rate;
        self
    }

    /// Sets the warp imbalance factor (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn with_imbalance(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "imbalance factor must be >= 1");
        self.imbalance = factor;
        self
    }

    /// Sets the dependency-chain density (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `[0, 1]`.
    pub fn with_dependency_factor(mut self, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&factor), "dependency factor must be in [0, 1]");
        self.dependency_factor = factor;
        self
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }

    /// Warps per block for a given warp size.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.block_threads.div_ceil(warp_size)
    }

    /// Validates the descriptor.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant (empty grid or
    /// block, invalid mix, out-of-range rates).
    pub fn validate(&self) -> Result<(), String> {
        if self.grid_blocks == 0 || self.block_threads == 0 {
            return Err(format!("kernel '{}' has an empty grid or block", self.name));
        }
        if !(0.0..=1.0).contains(&self.l1_hit_rate) {
            return Err(format!("kernel '{}' L1 hit rate out of range", self.name));
        }
        if self.imbalance < 1.0 || !self.imbalance.is_finite() {
            return Err(format!("kernel '{}' imbalance must be >= 1", self.name));
        }
        if !(0.0..=1.0).contains(&self.dependency_factor) {
            return Err(format!("kernel '{}' dependency factor out of range", self.name));
        }
        self.mix.validate().map_err(|e| format!("kernel '{}': {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_totals() {
        let mix = InstructionMix {
            flops: 100.0,
            transcendentals: 10.0,
            loads: 20.0,
            stores: 8.0,
            read_only_fraction: 0.5,
            integer_ops: 12.0,
        };
        assert_eq!(mix.instructions(), 150.0);
        assert_eq!(mix.bytes(), 112.0);
        assert!(mix.validate().is_ok());
    }

    #[test]
    fn mix_validation() {
        let mix = InstructionMix { flops: -1.0, ..Default::default() };
        assert!(mix.validate().is_err());
        let mix = InstructionMix { read_only_fraction: 1.5, ..Default::default() };
        assert!(mix.validate().is_err());
    }

    #[test]
    fn kernel_builder_chain() {
        let k = KernelDesc::new("k", 4, 128, InstructionMix::default())
            .with_intra_syncs(3)
            .with_inter_sync()
            .with_l1_hit_rate(0.9)
            .with_imbalance(1.5);
        assert_eq!(k.intra_block_syncs, 3);
        assert!(k.inter_block_sync);
        assert_eq!(k.l1_hit_rate, 0.9);
        assert_eq!(k.imbalance, 1.5);
        assert_eq!(k.warps_per_block(32), 4);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn warps_round_up() {
        let k = KernelDesc::new("k", 1, 33, InstructionMix::default());
        assert_eq!(k.warps_per_block(32), 2);
    }

    #[test]
    fn kernel_validation_rejects_empty_grid() {
        let k = KernelDesc::new("k", 0, 1, InstructionMix::default());
        assert!(k.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "imbalance")]
    fn builder_rejects_sub_unit_imbalance() {
        KernelDesc::new("k", 1, 1, InstructionMix::default()).with_imbalance(0.5);
    }
}
