//! Bridges simulated-GPU profiler aggregates onto the unified telemetry
//! timeline.
//!
//! The GPU model runs in *simulated* time: kernel durations come from the
//! analytical device model, not from the wall clock the CPU spans measure.
//! [`bridge_profiler`] lays each kernel's aggregate out as a completed span
//! on a named synthetic track (tid ≥ `EXTERNAL_TID_BASE` in the exported
//! Chrome trace), so a `repro --trace-out` capture shows the simulated
//! kernel mix next to the real CPU spans. Kernels are placed back to back
//! from the bridge call's timestamp, in profiler (name) order — the track
//! visualizes *relative* kernel cost, not true concurrency.

use crate::profiler::Profiler;

/// The synthetic track name bridged kernel spans appear under.
pub const GPU_TRACK: &str = "gpusim";

/// Exports every kernel aggregate in `profiler` to the telemetry collector:
/// one span per kernel (duration = total simulated seconds) laid
/// sequentially on the [`GPU_TRACK`] timeline, plus per-kernel invocation
/// counters and simulated-time histogram entries.
///
/// Returns the number of kernels bridged. No-op (returning 0) when
/// telemetry is off; spans additionally require `full` mode, counters work
/// in `summary` too — both gates live inside the telemetry crate, so this
/// is cheap to call unconditionally at end of run.
pub fn bridge_profiler(profiler: &Profiler) -> usize {
    let mut bridged = 0;
    let mut cursor_ns = holoar_telemetry::now_ns();
    for (name, agg) in profiler.iter() {
        let dur_ns = (agg.total_time * 1e9).max(0.0) as u64;
        holoar_telemetry::record_external_span(
            GPU_TRACK,
            format!("gpu.{name}"),
            "gpu",
            cursor_ns,
            dur_ns,
        );
        cursor_ns = cursor_ns.saturating_add(dur_ns);
        holoar_telemetry::counter_add(&format!("gpusim.kernel.{name}.launches"), agg.invocations);
        holoar_telemetry::histogram_record_us(
            &format!("gpusim.kernel.{name}.sim_time_us"),
            agg.total_time * 1e6,
        );
        bridged += 1;
    }
    holoar_telemetry::counter_add("gpusim.kernels.bridged", bridged as u64);
    bridged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kernel::{InstructionMix, KernelDesc};

    fn profiler_with(names: &[&str]) -> Profiler {
        let mut device = Device::xavier();
        let mut profiler = Profiler::new();
        for name in names {
            let k = KernelDesc::new(
                *name,
                32,
                256,
                InstructionMix { flops: 20.0, loads: 4.0, stores: 2.0, ..Default::default() },
            );
            profiler.record(&device.execute(&k));
        }
        profiler
    }

    #[test]
    fn bridges_one_entry_per_kernel() {
        let profiler = profiler_with(&["fwd", "bwd", "fwd"]);
        assert_eq!(bridge_profiler(&profiler), 2, "aggregated by name");
    }

    #[test]
    fn empty_profiler_bridges_nothing() {
        assert_eq!(bridge_profiler(&Profiler::new()), 0);
    }
}
