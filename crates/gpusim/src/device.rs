//! The simulated device: kernel execution and the launch timeline.

use crate::config::DeviceConfig;
use crate::kernel::KernelDesc;
use crate::sm::block_cost;
use crate::stats::KernelStats;

/// Error constructing a [`Device`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildDeviceError(String);

impl std::fmt::Display for BuildDeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid device configuration: {}", self.0)
    }
}

impl std::error::Error for BuildDeviceError {}

/// The simulated edge GPU.
///
/// # Examples
///
/// ```
/// use holoar_gpusim::{Device, InstructionMix, KernelDesc};
///
/// let mut device = Device::xavier();
/// let kernel = KernelDesc::new("axpy", 512, 256, InstructionMix {
///     flops: 2.0, loads: 2.0, stores: 1.0, ..Default::default()
/// });
/// let stats = device.execute(&kernel);
/// assert!(stats.time > 0.0);
/// assert!(stats.sm_utilization > 0.0 && stats.sm_utilization <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    launches: u64,
    busy_time: f64,
}

impl Device {
    /// Creates a device from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDeviceError`] when the configuration violates an
    /// invariant (see [`DeviceConfig::validate`]).
    pub fn new(config: DeviceConfig) -> Result<Self, BuildDeviceError> {
        config.validate().map_err(BuildDeviceError)?;
        Ok(Device { config, launches: 0, busy_time: 0.0 })
    }

    /// The default Jetson-AGX-Xavier-like device the paper evaluates on.
    pub fn xavier() -> Self {
        Device::new(DeviceConfig::default()).expect("default configuration is valid")
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Number of kernels launched so far.
    pub fn launch_count(&self) -> u64 {
        self.launches
    }

    /// Cumulative kernel execution time in seconds.
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Executes a kernel and returns its statistics.
    ///
    /// Blocks are distributed round-robin across SMs; the kernel finishes
    /// when the most-loaded SM drains its blocks. Block cycle costs come
    /// from the [`crate::sm`] model, scaled by the calibrated
    /// `kernel_efficiency`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is invalid (validate with
    /// [`KernelDesc::validate`] for a recoverable error).
    pub fn execute(&mut self, kernel: &KernelDesc) -> KernelStats {
        let cfg = &self.config;
        // holoar-lint: allow(no-panic-transitive, reason = "documented contract for hand-built descriptors; every in-tree caller launches kernels from this crate's builders, which are valid by construction, and KernelDesc::validate is the recoverable path")
        let cost = block_cost(kernel, cfg).unwrap_or_else(|e| panic!("{e}"));
        let blocks_per_sm = kernel.grid_blocks.div_ceil(cfg.sm_count) as f64;
        // Each launch pays a drain tail: the device idles while the last
        // wave's stragglers finish before the end-of-kernel (inter-block)
        // synchronization releases the host.
        let drain_tail = 0.5 * cost.total_cycles();
        let sm_cycles =
            (blocks_per_sm * cost.total_cycles() + drain_tail) / cfg.kernel_efficiency;
        let time = sm_cycles / cfg.clock_hz + cfg.launch_overhead;

        let busy = blocks_per_sm * cost.busy_cycles;
        let stalls = cost.exposed_stalls.scaled(blocks_per_sm);
        let denom = busy + stalls.total();
        let sm_utilization = if denom > 0.0 { busy / denom } else { 0.0 };

        let l1_bytes = kernel.total_threads() as f64 * kernel.mix.bytes();
        let dram_bytes =
            l1_bytes * (1.0 - kernel.l1_hit_rate) * (1.0 - cfg.memory.l2_hit_rate);

        self.launches += 1;
        self.busy_time += time;

        KernelStats {
            name: kernel.name.clone(),
            time,
            cycles: sm_cycles,
            busy_cycles: busy,
            stalls,
            sm_utilization,
            l1_hit_rate: kernel.l1_hit_rate,
            l1_bytes,
            dram_bytes,
        }
    }

    /// Executes a sequence of kernels, returning per-kernel statistics.
    pub fn execute_all(&mut self, kernels: &[KernelDesc]) -> Vec<KernelStats> {
        kernels.iter().map(|k| self.execute(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::kernel::InstructionMix;

    fn simple_kernel(blocks: u32) -> KernelDesc {
        KernelDesc::new(
            "k",
            blocks,
            256,
            InstructionMix { flops: 100.0, loads: 10.0, stores: 5.0, ..Default::default() },
        )
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = DeviceConfig { sm_count: 0, ..DeviceConfig::default() };
        let err = Device::new(cfg).unwrap_err();
        assert!(err.to_string().contains("SM"));
    }

    #[test]
    fn time_scales_with_grid_size() {
        let mut d = Device::xavier();
        let t1 = d.execute(&simple_kernel(80)).time;
        let t2 = d.execute(&simple_kernel(800)).time;
        assert!(t2 > 5.0 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let mut d = Device::xavier();
        let t = d.execute(&simple_kernel(1)).time;
        assert!(t >= d.config().launch_overhead);
    }

    #[test]
    fn utilization_bounded() {
        let mut d = Device::xavier();
        let s = d.execute(&simple_kernel(100));
        assert!(s.sm_utilization > 0.0 && s.sm_utilization <= 1.0);
    }

    #[test]
    fn device_accounts_launches_and_busy_time() {
        let mut d = Device::xavier();
        d.execute(&simple_kernel(10));
        d.execute(&simple_kernel(10));
        assert_eq!(d.launch_count(), 2);
        assert!(d.busy_time() > 0.0);
    }

    #[test]
    fn traffic_scales_with_threads_and_hit_rate() {
        let mut d = Device::xavier();
        let s = d.execute(&simple_kernel(100));
        assert_eq!(s.l1_bytes, 100.0 * 256.0 * 60.0);
        assert!(s.dram_bytes < s.l1_bytes);
    }

    #[test]
    fn slower_clock_is_slower() {
        let mut fast = Device::xavier();
        let cfg = DeviceConfig {
            clock_hz: DeviceConfig::default().clock_hz / 2.0,
            ..DeviceConfig::default()
        };
        let mut slow = Device::new(cfg).unwrap();
        let k = simple_kernel(400);
        assert!(slow.execute(&k).time > fast.execute(&k).time);
    }

    #[test]
    fn execute_all_preserves_order() {
        let mut d = Device::xavier();
        let ks = vec![simple_kernel(1), simple_kernel(2)];
        let stats = d.execute_all(&ks);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "k");
    }
}
