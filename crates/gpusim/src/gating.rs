//! Power gating and DVFS — the §5.5 future-work knobs, modeled.
//!
//! The paper's accelerator sketch asks: *"In some cases where a small amount
//! of hologram computation \[is\] required, not all of the PUs on-board are
//! needed to be active. We plan to design and implement a clock/power gating
//! technology to switch off the un-utilized PUs"*. Approximated holograms
//! and partial sub-holograms launch smaller grids; when a grid cannot fill
//! every SM, gating powers the idle ones down and saves their share of
//! static (and residual dynamic) power.
//!
//! DVFS is the complementary knob: scaling frequency (and with it voltage)
//! trades latency for power cubically — racing to finish versus crawling
//! efficiently.

use crate::config::{DeviceConfig, PowerConfig};
use crate::device::Device;
use crate::hologram_kernels::{job_kernels, HologramJob, HologramJobStats};
use crate::power::{Activity, EnergyMeter, RailPower};

/// Gating policy for idle SMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingPolicy {
    /// Whether idle SMs are power-gated at all.
    pub enabled: bool,
    /// SMs that can never be gated (kept warm for latency-critical wakeup).
    pub min_active_sms: u32,
}

impl Default for GatingPolicy {
    /// Gating on, one SM always awake.
    fn default() -> Self {
        GatingPolicy { enabled: true, min_active_sms: 1 }
    }
}

/// How many SMs a grid of `grid_blocks` blocks can keep busy.
pub fn sms_needed(grid_blocks: u32, config: &DeviceConfig) -> u32 {
    grid_blocks.min(config.sm_count).max(1)
}

/// GPU/Mem rails with `active_sms` of the device powered, at the given
/// activity. The GPU rail's static share and its dynamic draw both scale
/// with the powered fraction; other rails are unaffected.
///
/// # Panics
///
/// Panics if `active_sms` is zero or exceeds the SM count.
pub fn gated_rails(
    power: &PowerConfig,
    activity: Activity,
    active_sms: u32,
    sm_count: u32,
) -> RailPower {
    assert!(active_sms >= 1 && active_sms <= sm_count, "active SMs out of range");
    let fraction = active_sms as f64 / sm_count as f64;
    let ungated = power.rails(activity);
    RailPower {
        gpu: power.gpu_static * fraction + power.gpu_dynamic * activity.gpu * fraction,
        ..ungated
    }
}

/// Runs a hologram job with idle-SM gating applied to the power accounting
/// (latency is unchanged: gated SMs were idle anyway).
///
/// # Panics
///
/// Panics if the job is invalid.
pub fn run_job_gated(
    device: &mut Device,
    job: &HologramJob,
    policy: GatingPolicy,
) -> HologramJobStats {
    if job.plane_count == 0 {
        return HologramJobStats::skipped();
    }
    let kernels = job_kernels(job);
    let sm_count = device.config().sm_count;
    let power = device.config().power;
    let activity = Activity::for_hologram(job.plane_count as f64, &power);

    let mut meter = EnergyMeter::new();
    let mut stats = Vec::with_capacity(kernels.len());
    let mut weighted_rails = RailPower::default();
    let mut total_time = 0.0;
    for kernel in &kernels {
        let s = device.execute(kernel);
        let active = if policy.enabled {
            sms_needed(kernel.grid_blocks, device.config()).max(policy.min_active_sms)
        } else {
            sm_count
        };
        let rails = gated_rails(&power, activity, active.min(sm_count), sm_count);
        meter.accumulate(s.time, rails);
        weighted_rails.soc += rails.soc * s.time;
        weighted_rails.cpu += rails.cpu * s.time;
        weighted_rails.gpu += rails.gpu * s.time;
        weighted_rails.mem += rails.mem * s.time;
        total_time += s.time;
        stats.push(s);
    }
    let rails = if total_time > 0.0 {
        RailPower {
            soc: weighted_rails.soc / total_time,
            cpu: weighted_rails.cpu / total_time,
            gpu: weighted_rails.gpu / total_time,
            mem: weighted_rails.mem / total_time,
        }
    } else {
        RailPower::default()
    };
    HologramJobStats { latency: meter.time, rails, energy: meter.energy.total(), kernels: stats }
}

/// A DVFS operating point: clock scaled by `frequency_scale`, with voltage
/// tracking frequency (the standard near-linear V–f region), so dynamic
/// power scales as `f·V² ≈ f³` and latency as `1/f`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPoint {
    /// Clock multiplier relative to the calibrated nominal (e.g. 0.75).
    pub frequency_scale: f64,
}

impl DvfsPoint {
    /// The nominal operating point.
    pub const NOMINAL: DvfsPoint = DvfsPoint { frequency_scale: 1.0 };

    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if the scale is not in `(0, 1.5]` (Xavier's governor range,
    /// roughly).
    pub fn new(frequency_scale: f64) -> Self {
        assert!(
            frequency_scale > 0.0 && frequency_scale <= 1.5,
            "frequency scale must be in (0, 1.5]"
        );
        DvfsPoint { frequency_scale }
    }

    /// Derives the scaled device configuration: clock × `f`, GPU/Mem dynamic
    /// power × `f³` (voltage tracks frequency), statics unchanged.
    pub fn apply(&self, base: &DeviceConfig) -> DeviceConfig {
        let f = self.frequency_scale;
        let mut cfg = *base;
        cfg.clock_hz *= f;
        cfg.power.gpu_dynamic *= f * f * f;
        cfg.power.mem_dynamic *= f * f * f;
        cfg
    }
}

/// Latency and energy of a hologram job at a DVFS point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsOutcome {
    /// The operating point.
    pub point: DvfsPoint,
    /// Job latency, seconds.
    pub latency: f64,
    /// Job energy, joules.
    pub energy: f64,
}

/// Sweeps a hologram job across DVFS points (the race-to-idle analysis).
///
/// # Panics
///
/// Panics if `points` is empty or the job is invalid.
pub fn dvfs_sweep(base: &DeviceConfig, job: &HologramJob, points: &[DvfsPoint]) -> Vec<DvfsOutcome> {
    assert!(!points.is_empty(), "sweep needs at least one operating point");
    points
        .iter()
        .map(|&point| {
            let cfg = point.apply(base);
            let mut device = Device::new(cfg).expect("scaled configuration stays valid");
            let stats = crate::hologram_kernels::run_job(&mut device, job);
            DvfsOutcome { point, latency: stats.latency, energy: stats.energy }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hologram_kernels::run_job;

    #[test]
    fn sms_needed_saturates_at_device_size() {
        let cfg = DeviceConfig::default();
        assert_eq!(sms_needed(1, &cfg), 1);
        assert_eq!(sms_needed(5, &cfg), 5);
        assert_eq!(sms_needed(100, &cfg), 8);
        assert_eq!(sms_needed(0, &cfg), 1);
    }

    #[test]
    fn gating_never_raises_power() {
        let power = PowerConfig::default();
        let act = Activity::for_hologram(8.0, &power);
        let full = gated_rails(&power, act, 8, 8);
        let half = gated_rails(&power, act, 4, 8);
        assert!(half.total() < full.total());
        assert_eq!(half.soc, full.soc, "gating only touches the GPU rail");
        assert_eq!(half.mem, full.mem);
    }

    #[test]
    fn full_activity_ungated_matches_plain_rails() {
        let power = PowerConfig::default();
        let act = Activity::for_hologram(16.0, &power);
        let gated = gated_rails(&power, act, 8, 8);
        let plain = power.rails(act);
        assert!((gated.total() - plain.total()).abs() < 1e-12);
    }

    #[test]
    fn small_jobs_benefit_from_gating() {
        // A tiny sub-hologram (low coverage) cannot fill the device; gating
        // should cut its energy relative to the ungated run.
        let job = HologramJob { coverage: 0.004, ..HologramJob::full(2) }; // ~4 blocks
        let mut d1 = Device::xavier();
        let plain = run_job(&mut d1, &job);
        let mut d2 = Device::xavier();
        let gated = run_job_gated(&mut d2, &job, GatingPolicy::default());
        assert!((gated.latency - plain.latency).abs() < 1e-12, "gating must not slow down");
        assert!(gated.energy < plain.energy, "gated {} vs {}", gated.energy, plain.energy);
    }

    #[test]
    fn full_jobs_see_no_gating_effect() {
        let job = HologramJob::full(16); // 1024 blocks: fills all SMs
        let mut d1 = Device::xavier();
        let plain = run_job(&mut d1, &job);
        let mut d2 = Device::xavier();
        let gated = run_job_gated(&mut d2, &job, GatingPolicy::default());
        assert!((gated.energy - plain.energy).abs() / plain.energy < 1e-9);
    }

    #[test]
    fn disabled_policy_is_a_noop() {
        let job = HologramJob { coverage: 0.004, ..HologramJob::full(2) };
        let mut d1 = Device::xavier();
        let plain = run_job(&mut d1, &job);
        let mut d2 = Device::xavier();
        let off = run_job_gated(&mut d2, &job, GatingPolicy { enabled: false, min_active_sms: 1 });
        assert!((off.energy - plain.energy).abs() / plain.energy < 1e-9);
    }

    #[test]
    fn dvfs_race_to_idle_wins_on_this_board() {
        let base = DeviceConfig::default();
        let outcomes = dvfs_sweep(
            &base,
            &HologramJob::full(8),
            &[DvfsPoint::new(0.5), DvfsPoint::NOMINAL],
        );
        let slow = outcomes[0];
        let nominal = outcomes[1];
        assert!(slow.latency > 1.8 * nominal.latency, "half clock ≈ double latency");
        // Dynamic energy per op shrinks f², but SoC/CPU statics burn for
        // twice as long — and on this board statics dominate, so racing to
        // idle is the more efficient policy. (This is the §5.5 takeaway:
        // gate/finish-fast beats crawling.)
        assert!(
            slow.energy > nominal.energy,
            "slow {} should cost more than nominal {} on a static-heavy board",
            slow.energy,
            nominal.energy
        );
        // But the gap must come from statics: it should be bounded well
        // below the 2x a pure-static board would show.
        assert!(slow.energy < 1.5 * nominal.energy);
    }

    #[test]
    fn dvfs_apply_scales_clock_and_dynamic_power() {
        let base = DeviceConfig::default();
        let scaled = DvfsPoint::new(0.5).apply(&base);
        assert_eq!(scaled.clock_hz, base.clock_hz * 0.5);
        assert!((scaled.power.gpu_dynamic - base.power.gpu_dynamic * 0.125).abs() < 1e-12);
        assert_eq!(scaled.power.gpu_static, base.power.gpu_static);
    }

    #[test]
    #[should_panic(expected = "frequency scale")]
    fn dvfs_rejects_zero_scale() {
        DvfsPoint::new(0.0);
    }

    #[test]
    #[should_panic(expected = "active SMs out of range")]
    fn gated_rails_validates_range() {
        gated_rails(&PowerConfig::default(), Activity::IDLE, 0, 8);
    }
}
