//! Mapping the hologram algorithms onto GPU kernels.
//!
//! This is where Algorithm 1's structure (one forward and one backward
//! plane-sweep per GSW iteration, with per-plane barriers) becomes a kernel
//! sequence the simulated device can execute. The instruction mixes encode
//! the §3 characterization: both steps compute the same FFT-based
//! propagation math, but the forward step is barrier/imbalance-heavy
//! (74% SM utilization, stalls led by Data Request / Execution Dependency /
//! Instruction Fetch), while the backward step streams every plane's results
//! through the read-only path (90% utilization, stalls led by Read-only
//! Loads and Sync).

use crate::calibration;
use crate::device::Device;
use crate::kernel::{InstructionMix, KernelDesc};
use crate::power::{Activity, EnergyMeter, RailPower};
use crate::stats::KernelStats;

/// Which half of Algorithm 1 a propagation kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// `HP2DP`: hologram plane to depth plane (Algo 1 step 1).
    Forward,
    /// `DP2HP`: depth plane back to the hologram plane (Algo 1 step 2).
    Backward,
}

impl Step {
    /// Kernel name used in profiler reports.
    pub fn kernel_name(self) -> &'static str {
        match self {
            Step::Forward => "hp2dp_forward",
            Step::Backward => "dp2hp_backward",
        }
    }
}

/// Builds the propagation kernel for one depth plane.
///
/// `pixels` is the number of hologram samples the plane touches (the full
/// resolution, scaled down for partial viewing-window coverage).
///
/// # Panics
///
/// Panics if `pixels == 0`.
pub fn propagation_kernel(step: Step, pixels: u64) -> KernelDesc {
    assert!(pixels > 0, "propagation kernel needs at least one pixel");
    let block_threads = 256u32;
    let grid_blocks = pixels.div_ceil(block_threads as u64).min(u32::MAX as u64) as u32;
    match step {
        Step::Forward => KernelDesc::new(
            step.kernel_name(),
            grid_blocks,
            block_threads,
            InstructionMix {
                // Two 2-D FFTs (≈ 18 butterfly stages × ~10 flops/pixel)
                // plus the transfer-function multiply.
                flops: 368.0,
                transcendentals: 12.0,
                loads: 14.0,
                stores: 20.0,
                read_only_fraction: 0.10,
                integer_ops: 120.0,
            },
        )
        .with_intra_syncs(2)
        .with_l1_hit_rate(0.99)
        .with_imbalance(1.04)
        .with_dependency_factor(0.22),
        Step::Backward => KernelDesc::new(
            step.kernel_name(),
            grid_blocks,
            block_threads,
            InstructionMix {
                flops: 368.0,
                transcendentals: 12.0,
                loads: 30.0,
                stores: 6.0,
                read_only_fraction: 0.90,
                integer_ops: 20.0,
            },
        )
        .with_intra_syncs(3)
        .with_inter_sync()
        .with_l1_hit_rate(0.99)
        .with_imbalance(1.0)
        .with_dependency_factor(0.03),
    }
}

/// One hologram computation request: the unit HoloAR's planner schedules per
/// object per frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HologramJob {
    /// Hologram resolution in pixels (e.g. 512²).
    pub pixels: u64,
    /// Number of depth planes `M` (the approximation knob).
    pub plane_count: u32,
    /// Fraction of the hologram aperture actually computed (viewing-window
    /// coverage, `(0, 1]`; partial objects compute partial sub-holograms).
    pub coverage: f64,
    /// GSW iterations; the paper profiles five.
    pub gsw_iterations: u32,
}

impl HologramJob {
    /// A full-aperture job at the paper's profiled configuration
    /// (512², 5 GSW iterations).
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_gpusim::HologramJob;
    /// let job = HologramJob::full(16);
    /// assert_eq!(job.plane_count, 16);
    /// assert_eq!(job.gsw_iterations, 5);
    /// ```
    pub fn full(plane_count: u32) -> Self {
        HologramJob {
            pixels: calibration::HOLOGRAM_PIXELS,
            plane_count,
            coverage: 1.0,
            gsw_iterations: calibration::GSW_ITERATIONS,
        }
    }

    /// Validates the job.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.pixels == 0 {
            return Err("job must cover at least one pixel".into());
        }
        if !(self.coverage > 0.0 && self.coverage <= 1.0) {
            return Err("coverage must be in (0, 1]".into());
        }
        if self.gsw_iterations == 0 {
            return Err("GSW needs at least one iteration".into());
        }
        Ok(())
    }
}

/// Statistics from running one [`HologramJob`] on the device.
#[derive(Debug, Clone)]
pub struct HologramJobStats {
    /// End-to-end job latency, seconds.
    pub latency: f64,
    /// Rail power sustained during the job.
    pub rails: RailPower,
    /// Total energy, joules.
    pub energy: f64,
    /// Per-kernel statistics, in launch order.
    pub kernels: Vec<KernelStats>,
}

impl HologramJobStats {
    /// A zero-work result (skipped object).
    pub fn skipped() -> Self {
        HologramJobStats {
            latency: 0.0,
            rails: RailPower::default(),
            energy: 0.0,
            kernels: Vec::new(),
        }
    }
}

/// Builds the full kernel sequence for a job: per GSW iteration, one forward
/// and one backward propagation per depth plane.
///
/// # Panics
///
/// Panics if the job is invalid (use [`HologramJob::validate`] for a
/// recoverable error).
pub fn job_kernels(job: &HologramJob) -> Vec<KernelDesc> {
    if let Err(e) = job.validate() {
        // holoar-lint: allow(no-panic-transitive, reason = "documented contract for hand-built jobs; the serving and evaluation paths derive jobs from validated plans, and HologramJob::validate is the recoverable path")
        panic!("invalid hologram job: {e}");
    }
    let covered_pixels = ((job.pixels as f64 * job.coverage).ceil() as u64).max(1);
    let mut kernels =
        Vec::with_capacity((job.gsw_iterations * job.plane_count * 2) as usize);
    for _ in 0..job.gsw_iterations {
        for _ in 0..job.plane_count {
            kernels.push(propagation_kernel(Step::Forward, covered_pixels));
        }
        for _ in 0..job.plane_count {
            kernels.push(propagation_kernel(Step::Backward, covered_pixels));
        }
    }
    kernels
}

/// Builds the *fused* kernel sequence: per GSW iteration, all plane
/// propagations of one step merge into a single grid-wide launch (one
/// forward, one backward), eliminating the per-plane launch overheads and
/// drain tails — the kernel-engineering alternative to approximation that
/// §3's stall analysis invites.
///
/// # Panics
///
/// Panics if the job is invalid.
pub fn fused_job_kernels(job: &HologramJob) -> Vec<KernelDesc> {
    if let Err(e) = job.validate() {
        panic!("invalid hologram job: {e}");
    }
    let covered_pixels = ((job.pixels as f64 * job.coverage).ceil() as u64).max(1);
    let mut kernels = Vec::with_capacity((job.gsw_iterations * 2) as usize);
    for _ in 0..job.gsw_iterations {
        for step in [Step::Forward, Step::Backward] {
            let per_plane = propagation_kernel(step, covered_pixels);
            let mut fused = per_plane.clone();
            fused.name = format!("{}_fused", per_plane.name);
            fused.grid_blocks = per_plane
                .grid_blocks
                .saturating_mul(job.plane_count)
                .max(1);
            kernels.push(fused);
        }
    }
    kernels
}

/// Builds the *cross-session* merged kernel sequence for a batch of jobs
/// sharing one device: per GSW iteration and step, every session's plane
/// propagations coalesce into a single grid-wide launch whose grid is the
/// sum of the per-session plane grids. This is [`fused_job_kernels`] lifted
/// across sessions — the serving layer's batcher uses it to amortize launch
/// overheads and drain tails over the whole fleet instead of per session.
///
/// Jobs with `plane_count == 0` contribute nothing. All jobs must agree on
/// `gsw_iterations` (the batcher only merges lockstep iterations).
///
/// Returns the merged kernels in (iteration, forward-then-backward) order,
/// or an empty vector when no job has work.
///
/// # Panics
///
/// Panics if any job is invalid or if jobs disagree on `gsw_iterations`.
pub fn merged_session_kernels(jobs: &[HologramJob]) -> Vec<KernelDesc> {
    let active: Vec<&HologramJob> = jobs.iter().filter(|j| j.plane_count > 0).collect();
    let Some(first) = active.first() else {
        return Vec::new();
    };
    for job in &active {
        if let Err(e) = job.validate() {
            // holoar-lint: allow(no-panic-transitive, reason = "documented contract for hand-built jobs; the batcher only merges admission-validated session jobs, and HologramJob::validate is the recoverable path")
            panic!("invalid hologram job: {e}");
        }
        assert_eq!(
            job.gsw_iterations, first.gsw_iterations,
            "cross-session batching requires lockstep GSW iterations"
        );
    }
    let mut kernels = Vec::with_capacity((first.gsw_iterations * 2) as usize);
    for _ in 0..first.gsw_iterations {
        for step in [Step::Forward, Step::Backward] {
            let mut grid_blocks = 0u32;
            for job in &active {
                let covered = ((job.pixels as f64 * job.coverage).ceil() as u64).max(1);
                let per_plane = propagation_kernel(step, covered);
                grid_blocks = grid_blocks
                    .saturating_add(per_plane.grid_blocks.saturating_mul(job.plane_count));
            }
            let covered_first =
                ((first.pixels as f64 * first.coverage).ceil() as u64).max(1);
            let mut merged = propagation_kernel(step, covered_first);
            merged.name = format!("{}_xsession", step.kernel_name());
            merged.grid_blocks = grid_blocks.max(1);
            kernels.push(merged);
        }
    }
    kernels
}

/// Per-job share of a merged batch's work, as a fraction of total grid
/// blocks in `[0, 1]`. Used to attribute a merged launch's latency back to
/// the sessions that contributed planes; zero-plane jobs get a zero share.
pub fn batch_block_shares(jobs: &[HologramJob]) -> Vec<f64> {
    let per_job: Vec<u64> = jobs
        .iter()
        .map(|job| {
            if job.plane_count == 0 {
                return 0;
            }
            let covered = ((job.pixels as f64 * job.coverage).ceil() as u64).max(1);
            let per_plane = propagation_kernel(Step::Forward, covered);
            per_plane.grid_blocks as u64 * job.plane_count as u64
        })
        .collect();
    let total: u64 = per_job.iter().sum();
    if total == 0 {
        return vec![0.0; jobs.len()];
    }
    per_job.iter().map(|&b| b as f64 / total as f64).collect()
}

/// Runs a job with fused kernels (see [`fused_job_kernels`]).
///
/// # Panics
///
/// Panics if the job is invalid.
pub fn run_job_fused(device: &mut Device, job: &HologramJob) -> HologramJobStats {
    if job.plane_count == 0 {
        return HologramJobStats::skipped();
    }
    let kernels = fused_job_kernels(job);
    let stats = device.execute_all(&kernels);
    let latency: f64 = stats.iter().map(|s| s.time).sum();
    let activity = Activity::for_hologram(job.plane_count as f64, &device.config().power);
    let rails = device.config().power.rails(activity);
    let mut meter = EnergyMeter::new();
    meter.accumulate(latency, rails);
    HologramJobStats { latency, rails, energy: meter.energy.total(), kernels: stats }
}

/// Runs a hologram job, returning latency, power and energy.
///
/// A job with `plane_count == 0` is a skipped object: zero time, zero energy
/// (the viewing-window baseline's "outside the window" case).
///
/// # Examples
///
/// ```
/// use holoar_gpusim::{hologram_kernels, Device, HologramJob};
///
/// let mut device = Device::xavier();
/// let full = hologram_kernels::run_job(&mut device, &HologramJob::full(16));
/// let approx = hologram_kernels::run_job(&mut device, &HologramJob::full(8));
/// assert!(approx.latency < full.latency);
/// assert!(approx.energy < full.energy);
/// ```
///
/// # Panics
///
/// Panics if the job is invalid (non-zero planes with zero pixels/coverage).
pub fn run_job(device: &mut Device, job: &HologramJob) -> HologramJobStats {
    if job.plane_count == 0 {
        return HologramJobStats::skipped();
    }
    let kernels = job_kernels(job);
    let stats = device.execute_all(&kernels);
    let latency: f64 = stats.iter().map(|s| s.time).sum();
    let activity = Activity::for_hologram(job.plane_count as f64, &device.config().power);
    let rails = device.config().power.rails(activity);
    let mut meter = EnergyMeter::new();
    meter.accumulate(latency, rails);
    HologramJobStats { latency, rails, energy: meter.energy.total(), kernels: stats }
}

/// Latency of the forward and backward halves for one plane count — the
/// Fig 4b sweep.
pub fn step_latencies(device: &mut Device, pixels: u64, plane_count: u32) -> (f64, f64) {
    let mut fwd = 0.0;
    let mut bwd = 0.0;
    for _ in 0..calibration::GSW_ITERATIONS {
        for _ in 0..plane_count {
            fwd += device.execute(&propagation_kernel(Step::Forward, pixels)).time;
            bwd += device.execute(&propagation_kernel(Step::Backward, pixels)).time;
        }
    }
    (fwd, bwd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_distinguish_steps() {
        assert_eq!(Step::Forward.kernel_name(), "hp2dp_forward");
        assert_eq!(Step::Backward.kernel_name(), "dp2hp_backward");
    }

    #[test]
    fn job_kernel_count_matches_structure() {
        let job = HologramJob::full(16);
        let kernels = job_kernels(&job);
        assert_eq!(kernels.len(), (5 * 16 * 2) as usize);
    }

    #[test]
    fn coverage_scales_grid() {
        let full = propagation_kernel(Step::Forward, 512 * 512);
        let job = HologramJob { coverage: 0.25, ..HologramJob::full(4) };
        let kernels = job_kernels(&job);
        assert!(kernels[0].grid_blocks < full.grid_blocks);
        assert_eq!(kernels[0].grid_blocks, 256); // 65536 pixels / 256 threads
    }

    #[test]
    fn latency_roughly_linear_in_planes() {
        let mut d = Device::xavier();
        let t8 = run_job(&mut d, &HologramJob::full(8)).latency;
        let t16 = run_job(&mut d, &HologramJob::full(16)).latency;
        let ratio = t16 / t8;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn forward_and_backward_take_similar_time() {
        let mut d = Device::xavier();
        let (fwd, bwd) = step_latencies(&mut d, 512 * 512, 4);
        let ratio = fwd / bwd;
        assert!((0.7..1.4).contains(&ratio), "fwd/bwd ratio {ratio}");
    }

    #[test]
    fn zero_planes_is_skipped() {
        let mut d = Device::xavier();
        let job = HologramJob { plane_count: 0, ..HologramJob::full(0) };
        let stats = run_job(&mut d, &job);
        assert_eq!(stats.latency, 0.0);
        assert_eq!(stats.energy, 0.0);
        assert!(stats.kernels.is_empty());
    }

    #[test]
    fn job_validation() {
        assert!(HologramJob::full(16).validate().is_ok());
        let bad = HologramJob { coverage: 0.0, ..HologramJob::full(4) };
        assert!(bad.validate().is_err());
        let bad = HologramJob { gsw_iterations: 0, ..HologramJob::full(4) };
        assert!(bad.validate().is_err());
        let bad = HologramJob { pixels: 0, ..HologramJob::full(4) };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fusion_saves_a_little_but_not_the_10x() {
        // Kernel fusion removes launch overheads and drain tails; the model
        // shows it recovers only a few percent — the plane count, not the
        // kernel engineering, is the lever (the paper's §4 premise).
        let mut d1 = Device::xavier();
        let plain = run_job(&mut d1, &HologramJob::full(16)).latency;
        let mut d2 = Device::xavier();
        let fused = run_job_fused(&mut d2, &HologramJob::full(16)).latency;
        assert!(fused < plain, "fusion should help: {fused} vs {plain}");
        let saving = 1.0 - fused / plain;
        assert!(saving < 0.10, "fusion saving {saving:.3} should be small");
        assert!(saving > 0.001, "fusion saving {saving:.4} should be visible");
    }

    #[test]
    fn fused_workload_has_two_kernels_per_iteration() {
        let kernels = fused_job_kernels(&HologramJob::full(16));
        assert_eq!(kernels.len(), 10); // 5 iterations x (fwd + bwd)
        assert!(kernels[0].name.ends_with("_fused"));
        assert_eq!(kernels[0].grid_blocks, 16 * 1024);
    }

    #[test]
    fn merged_batch_has_two_kernels_per_iteration_and_summed_grids() {
        let jobs = [HologramJob::full(16), HologramJob::full(8), HologramJob::full(4)];
        let kernels = merged_session_kernels(&jobs);
        assert_eq!(kernels.len(), 10); // 5 iterations x (fwd + bwd)
        assert!(kernels[0].name.ends_with("_xsession"));
        // 512² → 1024 blocks per plane; 28 planes across the batch.
        assert_eq!(kernels[0].grid_blocks, 28 * 1024);
    }

    #[test]
    fn merged_batch_skips_empty_jobs_and_empty_batches() {
        let empty = HologramJob { plane_count: 0, ..HologramJob::full(0) };
        assert!(merged_session_kernels(&[empty]).is_empty());
        assert!(merged_session_kernels(&[]).is_empty());
        let kernels = merged_session_kernels(&[empty, HologramJob::full(4)]);
        assert_eq!(kernels[0].grid_blocks, 4 * 1024);
    }

    #[test]
    fn merged_batch_beats_sequential_jobs() {
        // The serving-layer premise: one launch over the fleet's planes is
        // faster than running each session's per-plane kernels in turn.
        let jobs = vec![HologramJob::full(8); 4];
        let mut seq_device = Device::xavier();
        let sequential: f64 = jobs
            .iter()
            .map(|j| run_job(&mut seq_device, j).latency)
            .sum();
        let mut batch_device = Device::xavier();
        let batched: f64 = batch_device
            .execute_all(&merged_session_kernels(&jobs))
            .iter()
            .map(|s| s.time)
            .sum();
        assert!(batched < sequential, "batched {batched} vs sequential {sequential}");
    }

    #[test]
    fn block_shares_are_proportional_and_sum_to_one() {
        let jobs = [
            HologramJob::full(12),
            HologramJob { plane_count: 0, ..HologramJob::full(0) },
            HologramJob::full(4),
        ];
        let shares = batch_block_shares(&jobs);
        assert_eq!(shares.len(), 3);
        assert_eq!(shares[1], 0.0);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] / shares[2] - 3.0).abs() < 1e-9);
        assert_eq!(batch_block_shares(&[]), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "lockstep GSW iterations")]
    fn merged_batch_rejects_mixed_iteration_counts() {
        let mut other = HologramJob::full(8);
        other.gsw_iterations = 3;
        merged_session_kernels(&[HologramJob::full(8), other]);
    }

    #[test]
    fn fewer_planes_burn_less_power() {
        let mut d = Device::xavier();
        let p16 = run_job(&mut d, &HologramJob::full(16)).rails.total();
        let p4 = run_job(&mut d, &HologramJob::full(4)).rails.total();
        assert!(p4 < p16);
    }

    #[test]
    #[should_panic(expected = "invalid hologram job")]
    fn invalid_job_panics_on_kernel_build() {
        job_kernels(&HologramJob { coverage: -1.0, ..HologramJob::full(4) });
    }
}
