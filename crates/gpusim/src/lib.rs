//! A cycle-approximate edge-GPU simulator — the reproduction's stand-in for
//! the NVIDIA Jetson AGX Xavier platform, NVPROF profiler and INA3221 power
//! monitor the paper evaluates HoloAR on.
//!
//! The model is deliberately at the granularity the paper's analysis needs:
//! thread blocks scheduled across SMs, a per-block cycle model with
//! throughput demands and NVPROF-category stall accounting ([`sm`]), a
//! four-rail power model ([`power`]), and a mapping from the depthmap
//! hologram algorithm onto kernel sequences ([`hologram_kernels`]). The
//! calibration anchors tying it to the paper's measurements live in
//! [`calibration`].
//!
//! # Examples
//!
//! Reproduce the paper's headline observation — the baseline hologram is
//! ~10× over its 33 ms deadline:
//!
//! ```
//! use holoar_gpusim::{hologram_kernels, Device, HologramJob};
//!
//! let mut device = Device::xavier();
//! let stats = hologram_kernels::run_job(&mut device, &HologramJob::full(16));
//! assert!(stats.latency > 0.3, "hologram takes {:.0} ms", stats.latency * 1e3);
//! ```

#![forbid(unsafe_code)]

pub mod calibration;
pub mod config;
pub mod device;
pub mod gating;
pub mod hologram_kernels;
pub mod kernel;
pub mod power;
pub mod profiler;
pub mod sm;
pub mod spec;
pub mod stats;
pub mod telemetry_bridge;
pub mod timeline;

pub use config::{DeviceConfig, MemoryConfig, PowerConfig, SmConfig};
pub use device::{BuildDeviceError, Device};
pub use gating::{DvfsOutcome, DvfsPoint, GatingPolicy};
pub use hologram_kernels::{HologramJob, HologramJobStats, Step};
pub use kernel::{InstructionMix, KernelDesc};
pub use power::{Activity, EnergyMeter, RailEnergy, RailPower};
pub use profiler::{KernelAggregate, Profiler};
pub use spec::{DeviceSpec, EDGE_FRAME_BUDGET};
pub use stats::{KernelStats, StallBreakdown, StallCategory};
pub use telemetry_bridge::{bridge_profiler, GPU_TRACK};
pub use timeline::{simulate, OccupancySample, StreamOp, Timeline};
