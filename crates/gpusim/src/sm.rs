//! The streaming-multiprocessor cycle model.
//!
//! For each thread block the model computes:
//!
//! * **busy cycles** — the throughput-bound residency on the SM's issue
//!   slots, ALUs, SFUs and L1 bandwidth (the max of those demands, since
//!   real kernels are bound by their tightest resource), and
//! * **raw stall cycles** per NVPROF category — memory latency, dependency
//!   chains, instruction fetch and barrier waits — which are then divided by
//!   the latency-hiding factor the resident-warp count affords before being
//!   *exposed*.
//!
//! The exposed total `(busy + stalls) / kernel_efficiency` is what the
//! device charges per block. `kernel_efficiency` is the single calibrated
//! scale anchoring modeled time to the paper's measured 341.7 ms hologram
//! (see `DeviceConfig::kernel_efficiency`).

use crate::config::DeviceConfig;
use crate::kernel::KernelDesc;
use crate::stats::{StallBreakdown, StallCategory};

/// Cycle cost of one thread block on one SM, before efficiency scaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Throughput-bound busy cycles.
    pub busy_cycles: f64,
    /// Stall cycles after latency hiding, by category.
    pub exposed_stalls: StallBreakdown,
}

impl BlockCost {
    /// Total cycles the block occupies (busy + exposed stalls).
    pub fn total_cycles(&self) -> f64 {
        self.busy_cycles + self.exposed_stalls.total()
    }
}

/// Computes the cycle cost of one block of `kernel` on the configured SM.
///
/// Returns the validation error for an invalid kernel; the cost model
/// itself is total on validated kernels, keeping this module panic-free
/// (callers on the real-time path hoist validation out of their loops).
pub fn block_cost(kernel: &KernelDesc, config: &DeviceConfig) -> Result<BlockCost, String> {
    kernel.validate().map_err(|e| format!("invalid kernel: {e}"))?;
    let sm = &config.sm;
    let mem = &config.memory;
    let threads = kernel.block_threads as f64;
    let warps = kernel.warps_per_block(sm.warp_size) as f64;
    let mix = &kernel.mix;

    // ---- Throughput demands (cycles the block holds each resource) ----
    let core_cycles = threads * mix.flops / sm.cores as f64;
    // Transcendentals run on SFUs at a 4-cycle issue rate.
    let sfu_cycles = threads * mix.transcendentals * 4.0 / sm.sfus as f64;
    let issue_cycles = warps * mix.instructions() / sm.schedulers as f64;
    let l1_cycles = threads * mix.bytes() / mem.l1_bytes_per_cycle_per_sm;
    // DRAM bandwidth is shared: charge this SM its fair share of the misses.
    let dram_bytes = threads * mix.bytes() * (1.0 - kernel.l1_hit_rate) * (1.0 - mem.l2_hit_rate);
    let dram_cycles = dram_bytes / (mem.dram_bytes_per_cycle / config.sm_count as f64);
    let busy = core_cycles.max(sfu_cycles).max(issue_cycles).max(l1_cycles).max(dram_cycles);

    // ---- Raw stall cycles (before latency hiding) ----
    let mut stalls = StallBreakdown::new();

    // Memory latency: per warp, loads coalesce to one transaction; misses
    // pay L2 or DRAM latency.
    let miss_latency = (1.0 - kernel.l1_hit_rate)
        * (mem.l2_hit_rate * mem.l2_latency + (1.0 - mem.l2_hit_rate) * mem.dram_latency);
    let load_stall = warps * mix.loads * (miss_latency + 0.15 * mem.l1_latency);
    stalls.add(StallCategory::ReadOnlyLoad, load_stall * mix.read_only_fraction);
    let store_stall = warps * mix.stores * 2.0;
    stalls.add(
        StallCategory::DataRequest,
        load_stall * (1.0 - mix.read_only_fraction) + store_stall,
    );

    // Dependency chains expose part of the arithmetic latency.
    let dep_stall = kernel.dependency_factor * warps * (mix.flops + 4.0 * mix.transcendentals);
    stalls.add(StallCategory::ExecutionDependency, dep_stall);

    // Instruction fetch: scales with dynamic instruction count; control-heavy
    // kernels (more integer ops) thrash the i-cache more.
    let ifetch = warps * (0.02 * mix.instructions() + 0.25 * mix.integer_ops);
    stalls.add(StallCategory::InstructionFetch, ifetch);

    // Barriers: every warp waits for the slowest one at each sync point, and
    // imbalance stretches the whole block.
    let barrier_cost = 20.0;
    let sync_stall = kernel.intra_block_syncs as f64 * warps * barrier_cost
        + (kernel.imbalance - 1.0) * busy
        + if kernel.inter_block_sync { warps * barrier_cost * 2.0 } else { 0.0 };
    stalls.add(StallCategory::Sync, sync_stall);

    // Residual: pipeline busy / not-selected.
    stalls.add(StallCategory::Other, 0.35 * warps * mix.instructions() / sm.schedulers as f64);

    // ---- Latency hiding ----
    // More resident warps hide more latency. One block's warps plus however
    // many co-resident blocks fit (capped by the SM's warp slots).
    let resident_warps =
        (warps * co_resident_blocks(kernel, config)).min(sm.max_resident_warps as f64);
    // Read-only (LDG/texture) traffic hides especially well: its dedicated
    // cache path and deep miss queues let streaming kernels keep issuing.
    let hide = (resident_warps / 10.0).max(1.0) * (1.0 + 2.0 * mix.read_only_fraction);
    let exposed = stalls.scaled(1.0 / hide);

    Ok(BlockCost { busy_cycles: busy, exposed_stalls: exposed })
}

/// How many blocks of this kernel co-reside on one SM (register/thread-slot
/// limited; simplified to the thread-capacity bound).
pub fn co_resident_blocks(kernel: &KernelDesc, config: &DeviceConfig) -> f64 {
    let capacity = (config.sm.max_resident_warps * config.sm.warp_size) as f64;
    (capacity / kernel.block_threads as f64).clamp(1.0, 16.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::InstructionMix;

    fn kernel(mix: InstructionMix) -> KernelDesc {
        KernelDesc::new("test", 64, 256, mix)
    }

    #[test]
    fn more_flops_cost_more() {
        let cfg = DeviceConfig::default();
        let light = block_cost(&kernel(InstructionMix { flops: 64.0, ..Default::default() }), &cfg)
            .expect("valid kernel");
        let heavy = block_cost(&kernel(InstructionMix { flops: 640.0, ..Default::default() }), &cfg)
            .expect("valid kernel");
        assert!(heavy.total_cycles() > light.total_cycles());
    }

    #[test]
    fn loads_create_memory_stalls() {
        let cfg = DeviceConfig::default();
        let k = kernel(InstructionMix { loads: 40.0, read_only_fraction: 0.25, ..Default::default() })
            .with_l1_hit_rate(0.9);
        let cost = block_cost(&k, &cfg).expect("valid kernel");
        let dr = cost.exposed_stalls.cycles(StallCategory::DataRequest);
        let ro = cost.exposed_stalls.cycles(StallCategory::ReadOnlyLoad);
        assert!(dr > 0.0 && ro > 0.0);
        // 25% of load stalls are read-only.
        assert!((ro / (ro + dr) - 0.25).abs() < 0.05);
    }

    #[test]
    fn perfect_l1_removes_miss_latency() {
        let cfg = DeviceConfig::default();
        let hit = kernel(InstructionMix { loads: 40.0, ..Default::default() }).with_l1_hit_rate(1.0);
        let miss = kernel(InstructionMix { loads: 40.0, ..Default::default() }).with_l1_hit_rate(0.5);
        let ch = block_cost(&hit, &cfg).expect("valid kernel");
        let cm = block_cost(&miss, &cfg).expect("valid kernel");
        assert!(
            cm.exposed_stalls.cycles(StallCategory::DataRequest)
                > ch.exposed_stalls.cycles(StallCategory::DataRequest)
        );
    }

    #[test]
    fn syncs_add_sync_stalls() {
        let cfg = DeviceConfig::default();
        let none = kernel(InstructionMix { flops: 100.0, ..Default::default() });
        let synced = kernel(InstructionMix { flops: 100.0, ..Default::default() }).with_intra_syncs(8);
        let c0 = block_cost(&none, &cfg).expect("valid kernel");
        let c1 = block_cost(&synced, &cfg).expect("valid kernel");
        assert!(
            c1.exposed_stalls.cycles(StallCategory::Sync)
                > c0.exposed_stalls.cycles(StallCategory::Sync)
        );
    }

    #[test]
    fn imbalance_stretches_sync_time() {
        let cfg = DeviceConfig::default();
        let balanced =
            kernel(InstructionMix { flops: 200.0, ..Default::default() }).with_imbalance(1.0);
        let skewed =
            kernel(InstructionMix { flops: 200.0, ..Default::default() }).with_imbalance(1.5);
        assert!(
            block_cost(&skewed, &cfg).expect("valid kernel").exposed_stalls.cycles(StallCategory::Sync)
                > block_cost(&balanced, &cfg)
                    .expect("valid kernel")
                    .exposed_stalls
                    .cycles(StallCategory::Sync)
        );
    }

    #[test]
    fn dependency_factor_drives_exec_dep() {
        let cfg = DeviceConfig::default();
        let streaming = kernel(InstructionMix { flops: 300.0, ..Default::default() })
            .with_dependency_factor(0.02);
        let chained = kernel(InstructionMix { flops: 300.0, ..Default::default() })
            .with_dependency_factor(0.4);
        assert!(
            block_cost(&chained, &cfg)
                .expect("valid kernel")
                .exposed_stalls
                .cycles(StallCategory::ExecutionDependency)
                > block_cost(&streaming, &cfg)
                    .expect("valid kernel")
                    .exposed_stalls
                    .cycles(StallCategory::ExecutionDependency)
        );
    }

    #[test]
    fn co_residency_is_thread_capacity_bound() {
        let cfg = DeviceConfig::default();
        let small = KernelDesc::new("s", 1, 128, InstructionMix::default());
        let large = KernelDesc::new("l", 1, 1024, InstructionMix::default());
        assert!(co_resident_blocks(&small, &cfg) > co_resident_blocks(&large, &cfg));
        assert!(co_resident_blocks(&large, &cfg) >= 1.0);
    }

    #[test]
    fn invalid_kernel_is_rejected() {
        let k = KernelDesc::new("bad", 0, 0, InstructionMix::default());
        let err = block_cost(&k, &DeviceConfig::default()).unwrap_err();
        assert!(err.contains("invalid kernel"), "{err}");
    }
}
