//! Property tests for the GPU model: accounting identities and
//! monotonicities that must hold for any kernel shape.

use holoar_gpusim::gating::{gated_rails, run_job_gated, GatingPolicy};
use holoar_gpusim::hologram_kernels::{run_job, HologramJob};
use holoar_gpusim::{
    Activity, Device, DeviceConfig, EnergyMeter, InstructionMix, KernelDesc, PowerConfig,
    RailPower, StallCategory,
};
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = InstructionMix> {
    (0.0f64..600.0, 0.0f64..30.0, 0.0f64..80.0, 0.0f64..40.0, 0.0f64..1.0, 0.0f64..150.0)
        .prop_map(|(flops, transcendentals, loads, stores, read_only_fraction, integer_ops)| {
            InstructionMix { flops, transcendentals, loads, stores, read_only_fraction, integer_ops }
        })
}

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (1u32..2000, prop::sample::select(vec![32u32, 64, 128, 256, 512]), arb_mix(), 0u32..8,
     0.5f64..1.0, 1.0f64..1.5, 0.0f64..0.5)
        .prop_map(|(blocks, threads, mix, syncs, l1, imb, dep)| {
            KernelDesc::new("pk", blocks, threads, mix)
                .with_intra_syncs(syncs)
                .with_l1_hit_rate(l1)
                .with_imbalance(imb)
                .with_dependency_factor(dep)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every kernel execution produces finite, positive time and bounded
    /// utilization, and stall fractions sum to one when any stall exists.
    #[test]
    fn execution_invariants(kernel in arb_kernel()) {
        let mut device = Device::xavier();
        let stats = device.execute(&kernel);
        prop_assert!(stats.time > 0.0 && stats.time.is_finite());
        prop_assert!(stats.cycles >= 0.0);
        prop_assert!((0.0..=1.0).contains(&stats.sm_utilization));
        let total: f64 =
            StallCategory::ALL.iter().map(|&c| stats.stalls.fraction(c)).sum();
        if stats.stalls.total() > 0.0 {
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        prop_assert!(stats.dram_bytes <= stats.l1_bytes + 1e-9);
    }

    /// Time grows monotonically with grid size for a fixed kernel body.
    #[test]
    fn time_monotone_in_grid(mix in arb_mix(), a in 1u32..1000, b in 1u32..1000) {
        let (lo, hi) = (a.min(b), a.max(b));
        let mut device = Device::xavier();
        let t_lo = device.execute(&KernelDesc::new("k", lo, 256, mix)).time;
        let t_hi = device.execute(&KernelDesc::new("k", hi, 256, mix)).time;
        prop_assert!(t_hi >= t_lo - 1e-12);
    }

    /// Worse L1 behaviour never makes a kernel faster.
    #[test]
    fn cache_misses_never_speed_up(mix in arb_mix(), good in 0.5f64..1.0, bad in 0.0f64..0.5) {
        let mut device = Device::xavier();
        let fast = device
            .execute(&KernelDesc::new("k", 64, 256, mix).with_l1_hit_rate(good))
            .time;
        let slow = device
            .execute(&KernelDesc::new("k", 64, 256, mix).with_l1_hit_rate(bad))
            .time;
        prop_assert!(slow >= fast - 1e-12);
    }

    /// Rail power is positive, finite and monotone in activity.
    #[test]
    fn rails_monotone_in_activity(g1 in 0.0f64..1.0, g2 in 0.0f64..1.0, m in 0.0f64..1.0) {
        let power = PowerConfig::default();
        let (lo, hi) = (g1.min(g2), g1.max(g2));
        let p_lo = power.rails(Activity::new(lo, m, 0.3));
        let p_hi = power.rails(Activity::new(hi, m, 0.3));
        prop_assert!(p_lo.total() > 0.0 && p_lo.total().is_finite());
        prop_assert!(p_hi.total() >= p_lo.total());
    }

    /// The energy meter is additive: splitting an interval changes nothing.
    #[test]
    fn meter_is_additive(t in 0.001f64..10.0, split in 0.1f64..0.9, p in 0.5f64..8.0) {
        let rails = RailPower { soc: p * 0.2, cpu: p * 0.1, gpu: p * 0.5, mem: p * 0.2 };
        let mut whole = EnergyMeter::new();
        whole.accumulate(t, rails);
        let mut parts = EnergyMeter::new();
        parts.accumulate(t * split, rails);
        parts.accumulate(t * (1.0 - split), rails);
        prop_assert!((whole.energy.total() - parts.energy.total()).abs() < 1e-9);
        prop_assert!((whole.time - parts.time).abs() < 1e-12);
    }

    /// Job energy decomposes as latency × rail power, and both scale
    /// monotonically with plane count.
    #[test]
    fn job_energy_identity(planes in 1u32..32) {
        let mut device = Device::xavier();
        let stats = run_job(&mut device, &HologramJob::full(planes));
        prop_assert!(
            (stats.energy - stats.latency * stats.rails.total()).abs()
                < 1e-9 * stats.energy.max(1.0)
        );
        prop_assert_eq!(stats.kernels.len(), (planes * 5 * 2) as usize);
    }

    /// Gating never increases energy and never changes latency.
    #[test]
    fn gating_is_safe(planes in 1u32..8, coverage_milli in 1u64..1000) {
        let job = HologramJob {
            coverage: coverage_milli as f64 / 1000.0,
            ..HologramJob::full(planes)
        };
        let mut d1 = Device::xavier();
        let plain = run_job(&mut d1, &job);
        let mut d2 = Device::xavier();
        let gated = run_job_gated(&mut d2, &job, GatingPolicy::default());
        prop_assert!((gated.latency - plain.latency).abs() < 1e-12);
        prop_assert!(gated.energy <= plain.energy + 1e-12);
    }

    /// Gated rails interpolate between min and full power as SMs wake up.
    #[test]
    fn gated_rails_monotone_in_active_sms(a in 1u32..8, b in 1u32..8, act in 0.0f64..1.0) {
        let power = PowerConfig::default();
        let activity = Activity::new(act, act, 0.3);
        let (lo, hi) = (a.min(b), a.max(b));
        let p_lo = gated_rails(&power, activity, lo, 8);
        let p_hi = gated_rails(&power, activity, hi, 8);
        prop_assert!(p_hi.total() >= p_lo.total());
        prop_assert!(p_hi.total() <= power.rails(activity).total() + 1e-12);
    }

    /// A device with more SMs is never slower on a *compute-bound* kernel.
    /// (Bandwidth-bound kernels share a fixed DRAM pipe, so extra SMs only
    /// shrink each SM's slice — the model deliberately does not speed those
    /// up.)
    #[test]
    fn more_sms_never_slower_when_compute_bound(mix in arb_mix(), extra in 1u32..8) {
        let kernel = KernelDesc::new("cb", 512, 256, mix).with_l1_hit_rate(0.995);
        let mut small = Device::xavier();
        let big_cfg =
            DeviceConfig { sm_count: 8 + extra, ..DeviceConfig::default() };
        let mut big = Device::new(big_cfg).unwrap();
        let t_small = small.execute(&kernel).time;
        let t_big = big.execute(&kernel).time;
        prop_assert!(t_big <= t_small + 1e-12);
    }
}
