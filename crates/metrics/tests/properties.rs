//! Property tests for the quality metrics: metric axioms that must hold for
//! arbitrary images.

use holoar_metrics::{mse, psnr, ssim, ssim_windowed, Image};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = Image> {
    (2usize..10, 2usize..10)
        .prop_flat_map(|(rows, cols)| {
            prop::collection::vec(0.0f64..2.0, rows * cols)
                .prop_map(move |data| Image::new(rows, cols, data).expect("valid image"))
        })
}

fn pair() -> impl Strategy<Value = (Image, Image)> {
    (2usize..10, 2usize..10).prop_flat_map(|(rows, cols)| {
        (
            prop::collection::vec(0.0f64..2.0, rows * cols),
            prop::collection::vec(0.0f64..2.0, rows * cols),
        )
            .prop_map(move |(a, b)| {
                (
                    Image::new(rows, cols, a).expect("valid image"),
                    Image::new(rows, cols, b).expect("valid image"),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MSE is a symmetric, non-negative, identity-of-indiscernibles metric
    /// core.
    #[test]
    fn mse_axioms((a, b) in pair()) {
        let ab = mse(&a, &b).unwrap();
        let ba = mse(&b, &a).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert_eq!(mse(&a, &a).unwrap(), 0.0);
    }

    /// PSNR of an image against itself is infinite; against anything else
    /// it is finite and decreases as MSE grows.
    #[test]
    fn psnr_matches_mse_ordering(a in arb_image(), noise in 0.01f64..0.5) {
        prop_assume!(a.max_value() > 0.0);
        let small: Vec<f64> = a.pixels().iter().map(|v| v + noise * 0.1).collect();
        let large: Vec<f64> = a.pixels().iter().map(|v| v + noise).collect();
        let b_small = Image::new(a.rows(), a.cols(), small).unwrap();
        let b_large = Image::new(a.rows(), a.cols(), large).unwrap();
        prop_assert!(psnr(&a, &a).unwrap().is_infinite());
        let p_small = psnr(&a, &b_small).unwrap();
        let p_large = psnr(&a, &b_large).unwrap();
        prop_assert!(p_small > p_large, "{p_small} vs {p_large}");
    }

    /// SSIM (global and windowed) is bounded and reflexive for any image.
    #[test]
    fn ssim_axioms(a in arb_image(), window in 1usize..6) {
        let s = ssim(&a, &a).unwrap();
        prop_assert!((s - 1.0).abs() < 1e-9);
        let w = ssim_windowed(&a, &a, window).unwrap();
        prop_assert!((w - 1.0).abs() < 1e-9);
    }

    /// Cross-image SSIM stays within [-1, 1] (numerically, with epsilon).
    #[test]
    fn ssim_bounded((a, b) in pair(), window in 1usize..6) {
        let s = ssim(&a, &b).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "global {s}");
        let w = ssim_windowed(&a, &b, window).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&w), "windowed {w}");
    }

    /// Uniform intensity scaling of both images leaves MSE-per-peak² (and
    /// hence PSNR) unchanged.
    #[test]
    fn psnr_is_scale_invariant((a, b) in pair(), scale in 0.1f64..5.0) {
        prop_assume!(a.max_value() > 0.0);
        prop_assume!(mse(&a, &b).unwrap() > 1e-12);
        let scale_img = |img: &Image| {
            Image::new(
                img.rows(),
                img.cols(),
                img.pixels().iter().map(|v| v * scale).collect(),
            )
            .unwrap()
        };
        let p0 = psnr(&a, &b).unwrap();
        let p1 = psnr(&scale_img(&a), &scale_img(&b)).unwrap();
        prop_assert!((p0 - p1).abs() < 1e-9, "{p0} vs {p1}");
    }

    /// Normalization never changes image shape and caps the peak at 1.
    #[test]
    fn normalization_properties(a in arb_image()) {
        let n = a.normalized();
        prop_assert!(n.same_shape(&a));
        prop_assert!(n.max_value() <= 1.0 + 1e-12);
        if a.max_value() > 0.0 {
            prop_assert!((n.max_value() - 1.0).abs() < 1e-12);
        }
    }
}
