//! Image-quality metrics for the HoloAR reproduction's quality path.
//!
//! Reconstructed hologram views are compared against the unapproximated
//! baseline with [`psnr`] (the paper's §5.4 metric), with [`mse`] and
//! [`ssim`] as building block and cross-check respectively.
//!
//! # Examples
//!
//! ```
//! use holoar_metrics::{psnr, Image};
//!
//! let reference = Image::new(2, 2, vec![0.0, 0.5, 0.5, 1.0])?;
//! let degraded = Image::new(2, 2, vec![0.0, 0.45, 0.55, 1.0])?;
//! let db = psnr(&reference, &degraded)?;
//! assert!(db > 20.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod image;
pub mod quality;

pub use image::{BuildImageError, Image};
pub use quality::{mse, psnr, ssim, ssim_windowed, ShapeMismatchError, ACCEPTABLE_PSNR_DB};
