//! Image-quality metrics: MSE, PSNR and SSIM.
//!
//! The paper evaluates approximation quality with PSNR against the baseline
//! reconstruction (§5.4, Fig 10a), citing the standard definition \[21, 44\].
//! SSIM is included because the quality-sensitivity experiments benefit from
//! a structural metric as a cross-check.

use crate::image::Image;

/// Error comparing two images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// Shape of the first image.
    pub a: (usize, usize),
    /// Shape of the second image.
    pub b: (usize, usize),
}

impl std::fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot compare images of shapes {}x{} and {}x{}",
            self.a.0, self.a.1, self.b.0, self.b.1
        )
    }
}

impl std::error::Error for ShapeMismatchError {}

fn check_shapes(a: &Image, b: &Image) -> Result<(), ShapeMismatchError> {
    if a.same_shape(b) {
        Ok(())
    } else {
        Err(ShapeMismatchError { a: (a.rows(), a.cols()), b: (b.rows(), b.cols()) })
    }
}

/// Mean squared error between two images.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when shapes differ.
///
/// # Examples
///
/// ```
/// use holoar_metrics::{mse, Image};
/// let a = Image::new(1, 2, vec![0.0, 1.0])?;
/// let b = Image::new(1, 2, vec![0.0, 0.5])?;
/// assert_eq!(mse(&a, &b)?, 0.125);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mse(a: &Image, b: &Image) -> Result<f64, ShapeMismatchError> {
    check_shapes(a, b)?;
    let sum: f64 =
        a.pixels().iter().zip(b.pixels()).map(|(x, y)| (x - y) * (x - y)).sum();
    Ok(sum / a.len() as f64)
}

/// Peak signal-to-noise ratio in decibels, using the reference image's peak
/// as the signal ceiling. Identical images yield `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when shapes differ.
///
/// # Examples
///
/// ```
/// use holoar_metrics::{psnr, Image};
/// let reference = Image::new(1, 2, vec![0.0, 1.0])?;
/// assert!(psnr(&reference, &reference)?.is_infinite());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn psnr(reference: &Image, test: &Image) -> Result<f64, ShapeMismatchError> {
    let err = mse(reference, test)?;
    if err == 0.0 {
        return Ok(f64::INFINITY);
    }
    let peak = reference.max_value().max(f64::MIN_POSITIVE);
    Ok(10.0 * (peak * peak / err).log10())
}

/// Structural similarity (global SSIM over the whole image, single window),
/// in `[-1, 1]`; 1 means identical structure.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when shapes differ.
pub fn ssim(a: &Image, b: &Image) -> Result<f64, ShapeMismatchError> {
    check_shapes(a, b)?;
    let peak = a.max_value().max(b.max_value()).max(f64::MIN_POSITIVE);
    let c1 = (0.01 * peak).powi(2);
    let c2 = (0.03 * peak).powi(2);
    let n = a.len() as f64;
    let mean_a = a.mean();
    let mean_b = b.mean();
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for (&x, &y) in a.pixels().iter().zip(b.pixels()) {
        var_a += (x - mean_a) * (x - mean_a);
        var_b += (y - mean_b) * (y - mean_b);
        cov += (x - mean_a) * (y - mean_b);
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    Ok(((2.0 * mean_a * mean_b + c1) * (2.0 * cov + c2))
        / ((mean_a * mean_a + mean_b * mean_b + c1) * (var_a + var_b + c2)))
}

/// Windowed SSIM: the standard sliding-window form (square window of side
/// `window`, stride 1, uniform weighting), averaged over all window
/// positions. Falls back to the global [`ssim`] when the window does not
/// fit.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when shapes differ.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn ssim_windowed(a: &Image, b: &Image, window: usize) -> Result<f64, ShapeMismatchError> {
    assert!(window > 0, "SSIM window must be non-empty");
    check_shapes(a, b)?;
    let (rows, cols) = (a.rows(), a.cols());
    if window > rows || window > cols {
        return ssim(a, b);
    }
    let peak = a.max_value().max(b.max_value()).max(f64::MIN_POSITIVE);
    let c1 = (0.01 * peak).powi(2);
    let c2 = (0.03 * peak).powi(2);
    let n = (window * window) as f64;
    let mut total = 0.0;
    let mut count = 0u64;
    for r0 in 0..=(rows - window) {
        for c0 in 0..=(cols - window) {
            let mut sum_a = 0.0;
            let mut sum_b = 0.0;
            for r in r0..r0 + window {
                for c in c0..c0 + window {
                    sum_a += a.at(r, c);
                    sum_b += b.at(r, c);
                }
            }
            let mean_a = sum_a / n;
            let mean_b = sum_b / n;
            let mut var_a = 0.0;
            let mut var_b = 0.0;
            let mut cov = 0.0;
            for r in r0..r0 + window {
                for c in c0..c0 + window {
                    let da = a.at(r, c) - mean_a;
                    let db = b.at(r, c) - mean_b;
                    var_a += da * da;
                    var_b += db * db;
                    cov += da * db;
                }
            }
            var_a /= n;
            var_b /= n;
            cov /= n;
            total += ((2.0 * mean_a * mean_b + c1) * (2.0 * cov + c2))
                / ((mean_a * mean_a + mean_b * mean_b + c1) * (var_a + var_b + c2));
            count += 1;
        }
    }
    Ok(total / count as f64)
}

/// The quality threshold below which AR experience degrades noticeably; the
/// paper cites ~30 dB as sufficient for most AR applications (§5.4, \[57\]).
pub const ACCEPTABLE_PSNR_DB: f64 = 30.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn img(data: Vec<f64>) -> Image {
        let n = (data.len() as f64).sqrt() as usize;
        Image::new(n, data.len() / n, data).unwrap()
    }

    #[test]
    fn mse_basics() {
        let a = img(vec![1.0, 2.0, 3.0, 4.0]);
        let b = img(vec![1.0, 2.0, 3.0, 6.0]);
        assert_eq!(mse(&a, &b).unwrap(), 1.0);
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
        // Symmetric.
        assert_eq!(mse(&a, &b).unwrap(), mse(&b, &a).unwrap());
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = img(vec![0.2, 0.4, 0.6, 0.8]);
        assert!(psnr(&a, &a).unwrap().is_infinite());
    }

    #[test]
    fn psnr_decreases_with_error() {
        let reference = img(vec![1.0, 1.0, 1.0, 1.0]);
        let slight = img(vec![1.0, 1.0, 1.0, 0.99]);
        let worse = img(vec![1.0, 1.0, 1.0, 0.5]);
        let p_slight = psnr(&reference, &slight).unwrap();
        let p_worse = psnr(&reference, &worse).unwrap();
        assert!(p_slight > p_worse);
        assert!(p_slight > ACCEPTABLE_PSNR_DB);
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 0.01 with peak 1 → 20 dB.
        let reference = img(vec![1.0, 1.0, 1.0, 1.0]);
        let test = img(vec![0.9, 1.1, 0.9, 1.1]);
        let p = psnr(&reference, &test).unwrap();
        assert!((p - 20.0).abs() < 1e-9, "psnr {p}");
    }

    #[test]
    fn ssim_bounds_and_identity() {
        let a = img(vec![0.1, 0.5, 0.9, 0.3]);
        let s = ssim(&a, &a).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
        let b = img(vec![0.9, 0.5, 0.1, 0.7]);
        let cross = ssim(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&cross));
        assert!(cross < s);
    }

    #[test]
    fn windowed_ssim_identity_and_bounds() {
        let a = img(vec![0.1, 0.5, 0.9, 0.3, 0.2, 0.8, 0.4, 0.6, 0.7,
                         0.15, 0.55, 0.95, 0.35, 0.25, 0.85, 0.45]);
        assert!((ssim_windowed(&a, &a, 2).unwrap() - 1.0).abs() < 1e-9);
        let b = img(vec![0.9, 0.1, 0.3, 0.7, 0.8, 0.2, 0.6, 0.4, 0.3,
                         0.95, 0.15, 0.35, 0.75, 0.85, 0.25, 0.65]);
        let s = ssim_windowed(&a, &b, 2).unwrap();
        assert!((-1.0..=1.0).contains(&s));
        assert!(s < 1.0);
    }

    #[test]
    fn windowed_ssim_localizes_damage() {
        // Localized corruption: most windows are pristine (SSIM 1), a few see
        // the damage — the windowed average stays high, while the global
        // single-window score is dragged down by the variance mismatch.
        let mut base = vec![0.5; 64];
        base[0] = 0.6; // avoid zero variance everywhere
        let a = img(base.clone());
        let mut corrupted = base;
        corrupted[27] = 0.0;
        corrupted[28] = 1.0;
        let b = img(corrupted);
        let windowed = ssim_windowed(&a, &b, 3).unwrap();
        let global = ssim(&a, &b).unwrap();
        assert!(
            windowed > global,
            "windowed ({windowed:.3}) should localize damage; global ({global:.3}) spreads it"
        );
        assert!(windowed < 1.0, "the damaged windows must still register");
    }

    #[test]
    fn windowed_ssim_penalizes_global_scrambling() {
        // Scrambling structure everywhere hurts the windowed score severely.
        let a = img((0..64).map(|i| (i % 8) as f64 / 8.0).collect());
        let b = img((0..64).map(|i| ((i * 5 + 3) % 8) as f64 / 8.0).collect());
        let scrambled = ssim_windowed(&a, &b, 3).unwrap();
        let identical = ssim_windowed(&a, &a, 3).unwrap();
        assert!(scrambled < 0.6 * identical, "scrambled {scrambled} vs identical {identical}");
    }

    #[test]
    fn oversized_window_falls_back_to_global() {
        let a = img(vec![0.2, 0.4, 0.6, 0.8]);
        let b = img(vec![0.25, 0.35, 0.65, 0.75]);
        assert_eq!(ssim_windowed(&a, &b, 10).unwrap(), ssim(&a, &b).unwrap());
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_panics() {
        let a = img(vec![0.0; 4]);
        let _ = ssim_windowed(&a, &a, 0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = img(vec![0.0; 4]);
        let b = Image::new(1, 2, vec![0.0, 0.0]).unwrap();
        assert!(mse(&a, &b).is_err());
        assert!(psnr(&a, &b).is_err());
        assert!(ssim(&a, &b).is_err());
        let e = mse(&a, &b).unwrap_err();
        assert!(e.to_string().contains("2x2"));
    }
}
