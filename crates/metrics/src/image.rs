//! Luminance images: the common representation the quality metrics operate
//! on.

/// A row-major grayscale image with `f64` luminance.
///
/// # Examples
///
/// ```
/// use holoar_metrics::Image;
///
/// let img = Image::new(2, 2, vec![0.0, 0.5, 0.5, 1.0])?;
/// assert_eq!(img.max_value(), 1.0);
/// # Ok::<(), holoar_metrics::BuildImageError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error building an [`Image`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildImageError {
    /// A dimension was zero.
    EmptyDimensions,
    /// Buffer length disagreed with `rows × cols`.
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// A sample was negative or non-finite.
    InvalidSample {
        /// Linear index of the offending sample.
        index: usize,
    },
}

impl std::fmt::Display for BuildImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildImageError::EmptyDimensions => write!(f, "image dimensions must be non-zero"),
            BuildImageError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match rows*cols = {expected}")
            }
            BuildImageError::InvalidSample { index } => {
                write!(f, "negative or non-finite sample at index {index}")
            }
        }
    }
}

impl std::error::Error for BuildImageError {}

impl Image {
    /// Builds an image from a row-major luminance buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BuildImageError`] for zero dimensions, a mismatched buffer
    /// length, or negative/non-finite samples.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, BuildImageError> {
        if rows == 0 || cols == 0 {
            return Err(BuildImageError::EmptyDimensions);
        }
        if data.len() != rows * cols {
            return Err(BuildImageError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        for (i, &v) in data.iter().enumerate() {
            if !(v.is_finite() && v >= 0.0) {
                return Err(BuildImageError::InvalidSample { index: i });
            }
        }
        Ok(Image { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image has no pixels (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw luminance buffer.
    pub fn pixels(&self) -> &[f64] {
        &self.data
    }

    /// The pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "pixel index out of bounds");
        self.data[row * self.cols + col]
    }

    /// The maximum luminance.
    pub fn max_value(&self) -> f64 {
        self.data.iter().cloned().fold(0.0, f64::max)
    }

    /// The mean luminance.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Returns a copy normalized so the peak luminance is 1 (identity for an
    /// all-zero image).
    pub fn normalized(&self) -> Image {
        let peak = self.max_value();
        if peak <= 0.0 {
            return self.clone();
        }
        Image {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v / peak).collect(),
        }
    }

    /// Whether two images have identical shape.
    pub fn same_shape(&self, other: &Image) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(Image::new(0, 1, vec![]), Err(BuildImageError::EmptyDimensions));
        assert_eq!(
            Image::new(1, 2, vec![1.0]),
            Err(BuildImageError::LengthMismatch { expected: 2, actual: 1 })
        );
        assert_eq!(
            Image::new(1, 2, vec![1.0, -0.5]),
            Err(BuildImageError::InvalidSample { index: 1 })
        );
        assert_eq!(
            Image::new(1, 1, vec![f64::NAN]),
            Err(BuildImageError::InvalidSample { index: 0 })
        );
    }

    #[test]
    fn accessors() {
        let img = Image::new(2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(img.rows(), 2);
        assert_eq!(img.cols(), 3);
        assert_eq!(img.len(), 6);
        assert_eq!(img.at(1, 2), 5.0);
        assert_eq!(img.max_value(), 5.0);
        assert_eq!(img.mean(), 2.5);
    }

    #[test]
    fn normalization() {
        let img = Image::new(1, 2, vec![1.0, 4.0]).unwrap();
        let n = img.normalized();
        assert_eq!(n.pixels(), &[0.25, 1.0]);
        // All-zero image normalizes to itself.
        let z = Image::new(1, 2, vec![0.0, 0.0]).unwrap();
        assert_eq!(z.normalized(), z);
    }

    #[test]
    fn shape_comparison() {
        let a = Image::new(2, 2, vec![0.0; 4]).unwrap();
        let b = Image::new(2, 2, vec![1.0; 4]).unwrap();
        let c = Image::new(4, 1, vec![0.0; 4]).unwrap();
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_index_panics() {
        Image::new(1, 1, vec![0.0]).unwrap().at(0, 1);
    }

    #[test]
    fn error_display() {
        let e = BuildImageError::LengthMismatch { expected: 4, actual: 3 };
        assert!(e.to_string().contains("rows*cols"));
    }
}
