//! The global telemetry mode: one relaxed atomic consulted by every entry
//! point, so disabled telemetry costs a single load.
//!
//! Mirrors `HOLOAR_THREADS`' environment-variable style: processes opt in
//! with `HOLOAR_TELEMETRY=summary` or `HOLOAR_TELEMETRY=full`; unset (or any
//! unrecognized value) means off, so CI and benches run untelemetered by
//! default.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the telemetry mode.
pub const TELEMETRY_ENV_VAR: &str = "HOLOAR_TELEMETRY";

/// How much the process records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TelemetryMode {
    /// Nothing is recorded; every entry point is a single atomic load.
    Off = 0,
    /// Metrics (counters, gauges, histograms — including span-duration
    /// histograms) are recorded, but no per-span trace events are retained.
    Summary = 1,
    /// Everything: metrics plus the span tree for Chrome-trace export.
    Full = 2,
}

impl TelemetryMode {
    /// Parses a mode string: `off`/`0`/`false`/`none`, `summary`, or
    /// `full`/`on`/`1`/`true`/`trace` (case-insensitive, surrounding
    /// whitespace ignored). Returns `None` for anything else.
    pub fn parse(value: &str) -> Option<TelemetryMode> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "none" => Some(TelemetryMode::Off),
            "summary" => Some(TelemetryMode::Summary),
            "full" | "on" | "1" | "true" | "trace" => Some(TelemetryMode::Full),
            _ => None,
        }
    }

    /// The canonical lowercase name (`off`, `summary`, `full`).
    pub fn name(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Summary => "summary",
            TelemetryMode::Full => "full",
        }
    }
}

/// Process-wide mode; `Off` until [`set_mode`] or [`init_from_env`] runs.
static MODE: AtomicU8 = AtomicU8::new(TelemetryMode::Off as u8);

/// The current telemetry mode.
#[inline]
pub fn mode() -> TelemetryMode {
    match MODE.load(Ordering::Relaxed) {
        1 => TelemetryMode::Summary,
        2 => TelemetryMode::Full,
        _ => TelemetryMode::Off,
    }
}

/// Sets the process-wide telemetry mode.
pub fn set_mode(mode: TelemetryMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Whether any recording (metrics or spans) is active.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != TelemetryMode::Off as u8
}

/// Whether per-span trace events are retained (mode `full`).
#[inline]
pub fn capture_spans() -> bool {
    MODE.load(Ordering::Relaxed) == TelemetryMode::Full as u8
}

/// Resolves the mode the environment asks for: `HOLOAR_TELEMETRY` when set
/// to a recognized value, otherwise [`TelemetryMode::Off`]. Does not change
/// the process-wide mode.
pub fn mode_from_env() -> TelemetryMode {
    std::env::var(TELEMETRY_ENV_VAR)
        .ok()
        .and_then(|v| TelemetryMode::parse(&v))
        .unwrap_or(TelemetryMode::Off)
}

/// Applies the environment's mode ([`mode_from_env`]) process-wide and
/// returns it. Call once at process start (the `repro` binary does).
pub fn init_from_env() -> TelemetryMode {
    let m = mode_from_env();
    set_mode(m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_each_mode_spelling() {
        for s in ["off", "OFF", " 0 ", "false", "none"] {
            assert_eq!(TelemetryMode::parse(s), Some(TelemetryMode::Off), "{s}");
        }
        for s in ["summary", "Summary", " SUMMARY "] {
            assert_eq!(TelemetryMode::parse(s), Some(TelemetryMode::Summary), "{s}");
        }
        for s in ["full", "FULL", "on", "1", "true", "trace"] {
            assert_eq!(TelemetryMode::parse(s), Some(TelemetryMode::Full), "{s}");
        }
    }

    #[test]
    fn parse_rejects_unknown_values() {
        for s in ["", "2", "verbose", "ful l", "offf"] {
            assert_eq!(TelemetryMode::parse(s), None, "{s:?}");
        }
    }

    #[test]
    fn names_round_trip_through_parse() {
        for m in [TelemetryMode::Off, TelemetryMode::Summary, TelemetryMode::Full] {
            assert_eq!(TelemetryMode::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn modes_are_ordered_by_verbosity() {
        assert!(TelemetryMode::Off < TelemetryMode::Summary);
        assert!(TelemetryMode::Summary < TelemetryMode::Full);
    }
}
