//! Span-tree aggregation: critical-path attribution and flamegraph-style
//! self-time reports.
//!
//! Works over any slice of [`SpanRecord`]s — the live collector snapshot or
//! a synthesized per-frame tree (the serving layer builds one from simulated
//! stage timings so the analysis stays deterministic). Two questions are
//! answered:
//!
//! 1. **Critical path** — for a given root span, which chain of child spans
//!    dominated its duration? A missed deadline then *names* the stage that
//!    caused it instead of reporting a bare number.
//! 2. **Self time** — per span name, how much duration is the span's own
//!    (total minus children)? Rendered as a text flamegraph so the heaviest
//!    stage is visible without a trace viewer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::collector::SpanRecord;

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAgg {
    /// Span name the row aggregates.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total duration across those spans, nanoseconds.
    pub total_ns: u64,
    /// Self time (duration minus child durations), nanoseconds.
    pub self_ns: u64,
}

/// An index over a span slice supporting tree queries.
///
/// # Examples
///
/// ```
/// use std::borrow::Cow;
/// use holoar_telemetry::{SpanRecord, SpanTreeAnalysis};
///
/// let spans = vec![
///     SpanRecord { name: Cow::Borrowed("frame"), cat: "demo", tid: 0, id: 1,
///                  parent: None, start_ns: 0, dur_ns: 100 },
///     SpanRecord { name: Cow::Borrowed("heavy"), cat: "demo", tid: 0, id: 2,
///                  parent: Some(1), start_ns: 0, dur_ns: 80 },
/// ];
/// let tree = SpanTreeAnalysis::new(&spans);
/// let path = tree.critical_path(1);
/// assert_eq!(path.last().unwrap().name, "heavy");
/// ```
#[derive(Debug)]
pub struct SpanTreeAnalysis<'a> {
    spans: &'a [SpanRecord],
    /// Span id → index in `spans`.
    by_id: BTreeMap<u32, usize>,
    /// Parent id → child indices, sorted by (start, id) for determinism.
    children: BTreeMap<u32, Vec<usize>>,
}

impl<'a> SpanTreeAnalysis<'a> {
    /// Indexes `spans` for tree queries. Duplicate ids keep the first
    /// occurrence; orphan parents (id not in the slice) make their spans
    /// roots.
    pub fn new(spans: &'a [SpanRecord]) -> Self {
        let mut by_id = BTreeMap::new();
        let mut children: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            by_id.entry(s.id).or_insert(i);
        }
        for (i, s) in spans.iter().enumerate() {
            if let Some(parent) = s.parent {
                if by_id.contains_key(&parent) {
                    children.entry(parent).or_default().push(i);
                }
            }
        }
        for kids in children.values_mut() {
            kids.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
        }
        SpanTreeAnalysis { spans, by_id, children }
    }

    /// Indices of root spans (no parent, or a parent outside the slice),
    /// in slice order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !self.by_id.contains_key(&p)))
            .collect()
    }

    /// The longest-duration root span named `name` (ties broken toward the
    /// smaller id for determinism).
    pub fn worst_root(&self, name: &str) -> Option<&SpanRecord> {
        self.roots()
            .into_iter()
            .filter(|s| s.name == name)
            .max_by(|a, b| a.dur_ns.cmp(&b.dur_ns).then(b.id.cmp(&a.id)))
    }

    /// The critical path from the span with id `root_id`: the chain formed
    /// by repeatedly descending into the longest-duration child (ties
    /// toward the smaller id). Returns an empty vector for unknown ids.
    pub fn critical_path(&self, root_id: u32) -> Vec<&SpanRecord> {
        let mut path = Vec::new();
        let mut current = match self.by_id.get(&root_id) {
            Some(&i) => i,
            None => return path,
        };
        loop {
            let span = &self.spans[current];
            path.push(span);
            let next = self
                .children
                .get(&span.id)
                .and_then(|kids| {
                    kids.iter()
                        .copied()
                        .max_by(|&a, &b| {
                            self.spans[a]
                                .dur_ns
                                .cmp(&self.spans[b].dur_ns)
                                .then(self.spans[b].id.cmp(&self.spans[a].id))
                        })
                });
            match next {
                Some(i) => current = i,
                None => break,
            }
        }
        path
    }

    /// Self time of the span at `id`: duration minus the summed durations
    /// of its direct children, clamped at zero (children overlapping or
    /// exceeding the parent — possible with coarse clocks — never go
    /// negative).
    pub fn self_ns(&self, id: u32) -> u64 {
        let Some(&i) = self.by_id.get(&id) else { return 0 };
        let span = &self.spans[i];
        let child_total: u64 = self
            .children
            .get(&id)
            .map(|kids| kids.iter().map(|&k| self.spans[k].dur_ns).sum())
            .unwrap_or(0);
        span.dur_ns.saturating_sub(child_total)
    }

    /// Per-name aggregation (count, total, self time), sorted by self time
    /// descending, name ascending on ties — the flamegraph's data.
    pub fn self_time_by_name(&self) -> Vec<StageAgg> {
        let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for s in self.spans {
            let entry = by_name.entry(&s.name).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += s.dur_ns;
            entry.2 += self.self_ns(s.id);
        }
        let mut rows: Vec<StageAgg> = by_name
            .into_iter()
            .map(|(name, (count, total_ns, self_ns))| StageAgg {
                name: name.to_string(),
                count,
                total_ns,
                self_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        rows
    }

    /// A flamegraph-style text report: one bar per span name, widths
    /// proportional to self time. Deterministic; suitable for golden
    /// fixtures.
    pub fn flame_report(&self) -> String {
        let rows = self.self_time_by_name();
        let total_self: u64 = rows.iter().map(|r| r.self_ns).sum();
        let mut out = String::new();
        let _ = writeln!(out, "{:<34} {:>7} {:>12} {:>7}  self-time", "stage", "count", "self_ms", "share");
        for row in &rows {
            let share = if total_self > 0 {
                row.self_ns as f64 / total_self as f64
            } else {
                0.0
            };
            let width = (share * 40.0).round() as usize;
            let _ = writeln!(
                out,
                "{:<34} {:>7} {:>12.3} {:>6.1}%  {}",
                row.name,
                row.count,
                row.self_ns as f64 / 1e6,
                share * 100.0,
                "#".repeat(width),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(id: u32, parent: Option<u32>, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            cat: "test",
            tid: 0,
            id,
            parent,
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn demo_tree() -> Vec<SpanRecord> {
        vec![
            span(1, None, "frame", 0, 100),
            span(2, Some(1), "fft", 0, 30),
            span(3, Some(1), "optics", 30, 60),
            span(4, Some(3), "kernel", 30, 50),
        ]
    }

    #[test]
    fn critical_path_descends_into_the_longest_child() {
        let spans = demo_tree();
        let tree = SpanTreeAnalysis::new(&spans);
        let names: Vec<&str> =
            tree.critical_path(1).iter().map(|s| s.name.as_ref()).collect();
        assert_eq!(names, vec!["frame", "optics", "kernel"]);
    }

    #[test]
    fn self_time_subtracts_children_and_clamps() {
        let spans = demo_tree();
        let tree = SpanTreeAnalysis::new(&spans);
        assert_eq!(tree.self_ns(1), 10); // 100 − (30 + 60)
        assert_eq!(tree.self_ns(3), 10); // 60 − 50
        assert_eq!(tree.self_ns(4), 50); // leaf
        // A child longer than its parent clamps to zero self time.
        let odd = vec![span(1, None, "p", 0, 10), span(2, Some(1), "c", 0, 25)];
        let tree = SpanTreeAnalysis::new(&odd);
        assert_eq!(tree.self_ns(1), 0);
    }

    #[test]
    fn aggregation_sorts_by_self_time() {
        let spans = demo_tree();
        let tree = SpanTreeAnalysis::new(&spans);
        let rows = tree.self_time_by_name();
        assert_eq!(rows[0].name, "kernel");
        assert_eq!(rows[0].self_ns, 50);
        let total: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(total, 100); // self times partition the root duration
    }

    #[test]
    fn roots_and_worst_root_handle_orphans() {
        let mut spans = demo_tree();
        spans.push(span(9, Some(77), "frame", 200, 300)); // orphan parent
        let tree = SpanTreeAnalysis::new(&spans);
        assert_eq!(tree.roots().len(), 2);
        assert_eq!(tree.worst_root("frame").unwrap().id, 9);
        assert!(tree.worst_root("absent").is_none());
        assert!(tree.critical_path(12345).is_empty());
    }

    #[test]
    fn flame_report_lists_every_stage() {
        let spans = demo_tree();
        let tree = SpanTreeAnalysis::new(&spans);
        let report = tree.flame_report();
        for name in ["frame", "fft", "optics", "kernel"] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }
    }
}
