//! Sliding-window time-series over **frame index**, not wall clock.
//!
//! SLO monitoring wants "deadline-hit rate over the last N frames", "queue
//! depth right now", "mean occupancy recently". Keying windows by frame
//! index instead of wall-clock time keeps every derived signal a pure
//! function of the simulated run — replays are bit-identical across worker
//! counts, which is the workspace's determinism contract.

/// A fixed-capacity ring buffer of `(frame, value)` samples.
///
/// Pushing past capacity evicts the oldest sample. All aggregates
/// ([`SlidingWindow::mean`], [`SlidingWindow::sum`], …) are recomputed
/// from the retained samples in oldest→newest order, so they are exact
/// and order-deterministic (no drifting running accumulators).
///
/// # Examples
///
/// ```
/// use holoar_telemetry::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// for frame in 0..5 {
///     w.push(frame, frame as f64);
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.mean(), Some(3.0)); // frames 2, 3, 4
/// assert_eq!(w.latest(), Some((4, 4.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    capacity: usize,
    /// Ring storage; logically ordered oldest→newest starting at `head`.
    buf: Vec<(u64, f64)>,
    /// Index of the oldest sample once the ring is full.
    head: usize,
}

impl SlidingWindow {
    /// An empty window retaining at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        SlidingWindow { capacity, buf: Vec::with_capacity(capacity), head: 0 }
    }

    /// The maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has reached capacity (aggregates now describe a
    /// full window rather than a warm-up prefix).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, frame: u64, value: f64) {
        if self.buf.len() < self.capacity {
            self.buf.push((frame, value));
        } else {
            self.buf[self.head] = (frame, value);
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained samples, oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter()).copied()
    }

    /// The most recently pushed sample.
    pub fn latest(&self) -> Option<(u64, f64)> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last().copied()
        } else {
            Some(self.buf[self.head - 1])
        }
    }

    /// Sum of retained values, accumulated oldest → newest.
    pub fn sum(&self) -> f64 {
        self.iter().map(|(_, v)| v).sum()
    }

    /// Mean of retained values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum() / self.buf.len() as f64)
        }
    }

    /// Smallest retained value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.iter().map(|(_, v)| v).reduce(f64::min)
    }

    /// Largest retained value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.iter().map(|(_, v)| v).reduce(f64::max)
    }

    /// `(oldest, newest)` frame indices covered (`None` when empty).
    pub fn frame_span(&self) -> Option<(u64, u64)> {
        let mut it = self.iter();
        let first = it.next()?;
        let last = it.last().unwrap_or(first);
        Some((first.0, last.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_then_eviction_keeps_the_newest_samples() {
        let mut w = SlidingWindow::new(4);
        assert!(w.is_empty());
        for frame in 0..10u64 {
            w.push(frame, frame as f64 * 2.0);
        }
        assert!(w.is_full());
        let samples: Vec<(u64, f64)> = w.iter().collect();
        assert_eq!(samples, vec![(6, 12.0), (7, 14.0), (8, 16.0), (9, 18.0)]);
        assert_eq!(w.latest(), Some((9, 18.0)));
        assert_eq!(w.frame_span(), Some((6, 9)));
    }

    #[test]
    fn aggregates_are_exact_over_the_window() {
        let mut w = SlidingWindow::new(3);
        w.push(0, 1.0);
        w.push(1, 0.0);
        w.push(2, 1.0);
        w.push(3, 1.0); // evicts frame 0
        assert_eq!(w.sum(), 2.0);
        assert_eq!(w.mean(), Some(2.0 / 3.0));
        assert_eq!(w.min(), Some(0.0));
        assert_eq!(w.max(), Some(1.0));
    }

    #[test]
    fn empty_window_aggregates_are_none() {
        let w = SlidingWindow::new(2);
        assert_eq!(w.mean(), None);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
        assert_eq!(w.latest(), None);
        assert_eq!(w.frame_span(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = SlidingWindow::new(0);
    }
}
