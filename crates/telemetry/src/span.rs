//! Hierarchical RAII spans: monotonic timing, per-thread parent tracking,
//! and external (simulated-GPU) event injection.
//!
//! [`span`] returns a guard that measures from construction to drop. With
//! telemetry off the guard is inert (no clock read, no allocation). In
//! `summary` mode the duration feeds the span's latency histogram; in
//! `full` mode the completed span is additionally retained for the
//! Chrome-trace exporter, with its thread id and the id of the enclosing
//! span on the same thread (a thread-local stack tracks nesting).

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::collector::{self, SpanRecord};
use crate::mode;

/// Thread ids at or above this value are synthetic tracks for external
/// (bridged) events, not real OS threads.
pub const EXTERNAL_TID_BASE: u32 = 1_000_000;

static NEXT_SPAN_ID: AtomicU32 = AtomicU32::new(1);
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_ID: Cell<u32> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// This thread's dense telemetry id (assigned on first use, starting at 1).
pub fn current_thread_id() -> u32 {
    THREAD_ID.with(|id| {
        if id.get() == 0 {
            id.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

struct ActiveSpan {
    name: Cow<'static, str>,
    cat: &'static str,
    id: u32,
    parent: Option<u32>,
    tid: u32,
    start_ns: u64,
    /// Whether this span was pushed on the thread's nesting stack (mode was
    /// `full` at entry) and must be retained on drop.
    retained: bool,
}

/// RAII guard measuring one span; records on drop. Inert when telemetry was
/// off at construction.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// An inert guard (what [`span`] returns while telemetry is off).
    pub fn disabled() -> Self {
        SpanGuard { inner: None }
    }

    /// Whether this guard is actually measuring.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        // End on the same clock the start was read from: both endpoints
        // come from the collector epoch, so a child observed to start after
        // its parent is also guaranteed to end at or before it.
        let dur_ns = collector::now_ns().saturating_sub(active.start_ns);
        crate::histogram_record_us(&active.name, dur_ns as f64 / 1e3);
        if active.retained {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Pop back to (and including) this span; defensive against
                // out-of-order drops, which std scoping makes impossible in
                // safe code but cheap to guard anyway.
                if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                    stack.truncate(pos);
                }
            });
            collector::push_span(SpanRecord {
                name: active.name,
                cat: active.cat,
                tid: active.tid,
                id: active.id,
                parent: active.parent,
                start_ns: active.start_ns,
                dur_ns,
            });
        }
    }
}

/// Opens a span in the default `cpu` category.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "cpu")
}

/// Opens a span with an explicit Chrome-trace category.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    open_span(Cow::Borrowed(name), cat)
}

/// Opens a span whose name is computed at runtime (e.g. carries a scheme or
/// kernel name). Prefer [`span`] on hot paths — this allocates when given an
/// owned string.
#[inline]
pub fn span_dyn(name: impl Into<Cow<'static, str>>, cat: &'static str) -> SpanGuard {
    open_span(name.into(), cat)
}

fn open_span(name: Cow<'static, str>, cat: &'static str) -> SpanGuard {
    let m = mode::mode();
    if m == mode::TelemetryMode::Off {
        return SpanGuard::disabled();
    }
    let retained = m == mode::TelemetryMode::Full;
    let (id, parent, tid) = if retained {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        (id, parent, current_thread_id())
    } else {
        (0, None, 0)
    };
    // Timestamp after bookkeeping so nested spans start at or after their
    // parents.
    let start_ns = collector::now_ns();
    SpanGuard {
        inner: Some(ActiveSpan {
            name,
            cat,
            id,
            parent,
            tid,
            start_ns,
            retained,
        }),
    }
}

/// Injects a completed span with explicit timing onto a named synthetic
/// track — the bridge path for simulated-GPU kernel aggregates, whose
/// "durations" are simulated seconds rather than wall time. No-op unless
/// the mode is `full`.
///
/// Tracks are keyed by `track`: the same name always maps to the same
/// synthetic thread id (≥ [`EXTERNAL_TID_BASE`]).
pub fn record_external_span(
    track: &str,
    name: impl Into<Cow<'static, str>>,
    cat: &'static str,
    start_ns: u64,
    dur_ns: u64,
) {
    if !mode::capture_spans() {
        return;
    }
    collector::push_span(SpanRecord {
        name: name.into(),
        cat,
        tid: external_track_id(track),
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent: None,
        start_ns,
        dur_ns,
    });
}

/// Registered external track names, in id order.
static EXTERNAL_TRACKS: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());

/// Stable synthetic thread id for an external track name: the first use of
/// a name registers it at the next id ≥ [`EXTERNAL_TID_BASE`].
pub fn external_track_id(track: &str) -> u32 {
    let mut tracks = EXTERNAL_TRACKS.lock().expect("external track lock");
    let idx = match tracks.iter().position(|t| t == track) {
        Some(idx) => idx,
        None => {
            tracks.push(track.to_string());
            tracks.len() - 1
        }
    };
    EXTERNAL_TID_BASE + idx as u32
}

/// Registered `(track name, synthetic tid)` pairs, for exporter metadata.
pub fn external_tracks() -> Vec<(String, u32)> {
    EXTERNAL_TRACKS
        .lock()
        .expect("external track lock")
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), EXTERNAL_TID_BASE + i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_is_inert() {
        let g = SpanGuard::disabled();
        assert!(!g.is_active());
    }

    #[test]
    fn external_track_ids_are_stable_and_external() {
        let a = external_track_id("gpusim");
        let b = external_track_id("gpusim");
        let c = external_track_id("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a >= EXTERNAL_TID_BASE && c >= EXTERNAL_TID_BASE);
    }

    #[test]
    fn thread_ids_are_dense_and_distinct_across_threads() {
        let here = current_thread_id();
        assert!(here >= 1);
        assert_eq!(here, current_thread_id(), "stable within a thread");
        let there = std::thread::spawn(current_thread_id).join().unwrap();
        assert_ne!(here, there);
        assert!(there < EXTERNAL_TID_BASE);
    }
}
