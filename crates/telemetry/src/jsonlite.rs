//! A minimal JSON reader for validating exported artifacts.
//!
//! The workspace has no serde; this module parses standard JSON into a
//! small [`Json`] value tree. It exists for the exporter round-trip tests,
//! the golden-fixture check in `holoar-bench`, and the CI step that fails
//! when `repro --trace-out`/`--metrics-json` outputs are unparseable. It is
//! a *validator*, not a general-purpose parser: numbers become `f64`,
//! objects keep insertion order in a `Vec`, and errors are positions plus a
//! short message.
//!
//! # Examples
//!
//! ```
//! use holoar_telemetry::jsonlite::{parse, Json};
//!
//! let v = parse("{\"a\": [1, true, \"x\"]}").unwrap();
//! assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
//! ```

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object member list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

impl Json {
    /// Serializes the value as compact JSON.
    ///
    /// The output is deterministic: object members keep insertion order,
    /// whole numbers render without a fractional part, other finite
    /// numbers use Rust's shortest-roundtrip formatting, and non-finite
    /// numbers (which JSON cannot represent) become `null`. Strings are
    /// escaped so `parse(v.render())` reconstructs `v` for any finite
    /// document — the exporters and the lint diagnostics writer rely on
    /// this round trip instead of hand-rolled `format!` escaping.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Serializes the value as human-readable JSON, two-space indented.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => render_number(*n, out),
            Json::String(s) => render_string(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.render_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render_string(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Writes a finite number in canonical form; NaN/inf become `null`.
fn render_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes `s` as a double-quoted JSON string literal.
fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by our exporters;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| ParseError { offset: start, message: "invalid number".to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Json::Number(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"xs\": [1, {\"y\": null}], \"z\": \"\"}").unwrap();
        assert_eq!(v.get("xs").unwrap().as_array().unwrap()[0], Json::Number(1.0));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap()[1].get("y"), Some(&Json::Null));
        assert_eq!(v.get("z").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::String("A".to_string()));
    }

    #[test]
    fn render_round_trips() {
        let cases = [
            Json::Null,
            Json::Bool(true),
            Json::Number(42.0),
            Json::Number(-0.125),
            Json::Number(1.0e300),
            Json::String("quote \" slash \\ newline \n tab \t ctrl \u{1} unicode é".to_string()),
            Json::Array(vec![Json::Number(1.0), Json::Object(vec![]), Json::Array(vec![])]),
            Json::Object(vec![
                ("first".to_string(), Json::String(String::new())),
                ("second".to_string(), Json::Array(vec![Json::Bool(false)])),
            ]),
        ];
        for v in cases {
            assert_eq!(parse(&v.render()).unwrap(), v, "compact round trip of {v:?}");
            assert_eq!(parse(&v.render_pretty()).unwrap(), v, "pretty round trip of {v:?}");
        }
    }

    #[test]
    fn render_canonical_forms() {
        assert_eq!(Json::Number(3.0).render(), "3");
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Array(vec![]).render(), "[]");
        assert_eq!(
            Json::Object(vec![("a".to_string(), Json::Number(1.5))]).render(),
            "{\"a\":1.5}"
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
