//! Workspace-wide observability: hierarchical spans, a per-frame metrics
//! registry, and Chrome-trace/JSON exporters.
//!
//! The paper's argument is built on profiling evidence (§3/§4.5 attribute
//! latency to kernel time, sync stalls and memory traffic with NVPROF).
//! This crate gives the *CPU-side* reproduction pipeline the same
//! observability: every layer (FFT substrate, wave optics, planner/executor,
//! pipeline harness) opens [`span()`]s around its stages and feeds counters,
//! gauges and latency histograms into one process-wide registry, and the
//! `gpusim` profiler's simulated-kernel aggregates are bridged onto the same
//! timeline so one exported trace shows CPU spans and simulated GPU kernels
//! together.
//!
//! # Design constraints
//!
//! 1. **Near-zero cost when disabled.** The global mode is a single relaxed
//!    atomic; with [`TelemetryMode::Off`] (the default) every entry point
//!    returns after one load — no clock reads, no locks, no allocation.
//! 2. **Pure std.** No dependencies; the collector is a `OnceLock` of
//!    mutex-protected vectors and a `BTreeMap` registry.
//! 3. **Numerics untouched.** Telemetry observes; it never changes what the
//!    instrumented code computes (property-tested by the fft/optics suites
//!    with `full` telemetry enabled).
//!
//! # Modes
//!
//! The `HOLOAR_TELEMETRY` environment variable (see [`init_from_env`])
//! selects one of three modes, mirroring `HOLOAR_THREADS`' style:
//!
//! | mode | spans timed | metrics updated | trace events retained |
//! |---|---|---|---|
//! | `off` (default) | no | no | no |
//! | `summary` | yes (histograms only) | yes | no |
//! | `full` | yes | yes | yes |
//!
//! # Examples
//!
//! ```
//! use holoar_telemetry as telemetry;
//!
//! telemetry::set_mode(telemetry::TelemetryMode::Full);
//! telemetry::reset();
//! {
//!     let _frame = telemetry::span("example.frame");
//!     let _stage = telemetry::span("example.stage");
//!     telemetry::counter_add("example.objects", 3);
//! }
//! let trace = telemetry::export_chrome_trace();
//! assert!(trace.contains("example.stage"));
//! telemetry::set_mode(telemetry::TelemetryMode::Off);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod jsonlite;
pub mod metrics;
pub mod mode;
pub mod profile;
pub mod sketch;
pub mod span;
pub mod timeseries;

pub use collector::{now_ns, record_frame, reset, span_count, span_snapshot, SpanRecord};
pub use export::{
    export_chrome_trace, export_frames_csv, export_metrics_csv, export_metrics_json,
};
pub use metrics::{Histogram, Metric, Registry, BUCKET_BOUNDS_US};
pub use mode::{init_from_env, mode, mode_from_env, set_mode, TelemetryMode, TELEMETRY_ENV_VAR};
pub use profile::{SpanTreeAnalysis, StageAgg};
pub use sketch::QuantileSketch;
pub use span::{current_thread_id, record_external_span, span, span_cat, span_dyn, SpanGuard};
pub use timeseries::SlidingWindow;

use std::time::Duration;

/// Adds `delta` to the named counter. No-op unless telemetry is enabled.
pub fn counter_add(name: &str, delta: u64) {
    if mode::enabled() {
        collector::with_registry(|r| r.counter_add(name, delta));
    }
}

/// Sets the named gauge to `value`. No-op unless telemetry is enabled.
pub fn gauge_set(name: &str, value: f64) {
    if mode::enabled() {
        collector::with_registry(|r| r.gauge_set(name, value));
    }
}

/// Records `value` (microseconds) into the named fixed-bucket histogram.
/// No-op unless telemetry is enabled.
pub fn histogram_record_us(name: &str, value: f64) {
    if mode::enabled() {
        collector::with_registry(|r| r.histogram_record(name, value));
    }
}

/// Records a wall-clock duration into the named histogram, in microseconds.
/// No-op unless telemetry is enabled.
pub fn histogram_record_duration(name: &str, duration: Duration) {
    histogram_record_us(name, duration.as_secs_f64() * 1e6);
}
