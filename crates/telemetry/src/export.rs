//! Exporters: Chrome-trace (`chrome://tracing` / Perfetto) JSON, a flat
//! metrics JSON, a metrics CSV, and the per-frame summary CSV.
//!
//! All serialization is hand-rolled (the workspace is dependency-free); the
//! output is plain standard JSON, verified round-trip by the exporter tests
//! through [`crate::jsonlite`].

use std::fmt::Write as _;

use crate::collector::{frame_snapshot, span_snapshot, with_registry, SpanRecord};
use crate::metrics::{Histogram, Metric, Registry, BUCKET_BOUNDS_US};
use crate::span::external_tracks;

/// Exports every retained span as a Chrome-trace JSON document
/// (`{"traceEvents": [...]}` with complete `"ph": "X"` events, timestamps
/// in microseconds since the collector epoch).
///
/// Events are sorted by start time (ties broken longest-first so parents
/// precede their children); viewers group rows by `pid`/`tid`, with
/// metadata events naming the process and the bridged GPU tracks.
pub fn export_chrome_trace() -> String {
    let mut spans = span_snapshot();
    spans.sort_by(|a, b| {
        a.start_ns.cmp(&b.start_ns).then(b.dur_ns.cmp(&a.dur_ns)).then(a.id.cmp(&b.id))
    });

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"holoar\"}}",
    );
    for (track, tid) in external_tracks() {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            json_string(&track)
        );
    }
    for s in &spans {
        out.push_str(",\n");
        push_span_event(&mut out, s);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn push_span_event(out: &mut String, s: &SpanRecord) {
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":{},\
         \"ts\":{},\"dur\":{},\"args\":{{\"id\":{}",
        s.tid,
        json_string(&s.name),
        json_string(s.cat),
        json_f64(s.start_ns as f64 / 1e3),
        json_f64(s.dur_ns as f64 / 1e3),
        s.id,
    );
    if let Some(parent) = s.parent {
        let _ = write!(out, ",\"parent\":{parent}");
    }
    out.push_str("}}");
}

/// Exports the metrics registry (plus frame-log and span-count summaries)
/// as one JSON document: `{"mode", "span_count", "counters", "gauges",
/// "histograms", "frames"}`.
pub fn export_metrics_json() -> String {
    let registry: Registry = with_registry(|r| r.clone());
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"mode\": {},", json_string(crate::mode().name()));
    let _ = writeln!(out, "  \"span_count\": {},", crate::span_count());

    out.push_str("  \"counters\": {");
    let mut first = true;
    for (name, metric) in registry.iter() {
        if let Metric::Counter(v) = metric {
            push_key(&mut out, &mut first, name, 4);
            let _ = write!(out, "{v}");
        }
    }
    out.push_str("\n  },\n  \"gauges\": {");
    first = true;
    for (name, metric) in registry.iter() {
        if let Metric::Gauge(v) = metric {
            push_key(&mut out, &mut first, name, 4);
            out.push_str(&json_f64(*v));
        }
    }
    out.push_str("\n  },\n  \"histograms\": {");
    first = true;
    for (name, metric) in registry.iter() {
        if let Metric::Histogram(h) = metric {
            push_key(&mut out, &mut first, name, 4);
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum_us\": {}, \"mean_us\": {}, \"min_us\": {}, \
                 \"max_us\": {}, \"overflow\": {}, \"non_finite\": {}, \
                 \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
                 \"buckets\": [",
                h.count(),
                json_f64(h.sum_us()),
                json_f64(h.mean_us()),
                json_f64(h.min_us().unwrap_or(0.0)),
                json_f64(h.max_us().unwrap_or(0.0)),
                h.overflow_count(),
                h.non_finite_count(),
                json_quantile(h, 0.50),
                json_quantile(h, 0.90),
                json_quantile(h, 0.99),
                json_quantile(h, 0.999),
            );
            for (i, (&count, bound)) in h
                .bucket_counts()
                .iter()
                .zip(BUCKET_BOUNDS_US.iter().map(|&b| json_f64(b)).chain(["null".to_string()]))
                .enumerate()
            {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le_us\": {bound}, \"count\": {count}}}");
            }
            out.push_str("]}");
        }
    }
    out.push_str("\n  },\n  \"frames\": [");
    let frames = frame_snapshot();
    for (i, row) in frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {{\"index\": {}", row.index);
        for (key, value) in &row.fields {
            let _ = write!(out, ", {}: {}", json_string(key), json_f64(*value));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Exports counters and gauges as flat CSV (`name,kind,value`), histograms
/// as (`name,histogram,count,sum_us,mean_us,min_us,max_us,overflow,p50_us,
/// p99_us`); the trailing quantile columns come from each histogram's
/// embedded sketch and are empty for counters/gauges.
pub fn export_metrics_csv() -> String {
    let registry: Registry = with_registry(|r| r.clone());
    let mut out = String::from("name,kind,value,sum_us,mean_us,min_us,max_us,overflow,p50_us,p99_us\n");
    for (name, metric) in registry.iter() {
        match metric {
            Metric::Counter(v) => {
                let _ = writeln!(out, "{name},counter,{v},,,,,,,");
            }
            Metric::Gauge(v) => {
                let _ = writeln!(out, "{name},gauge,{v},,,,,,,");
            }
            Metric::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "{name},histogram,{},{},{},{},{},{},{},{}",
                    h.count(),
                    h.sum_us(),
                    h.mean_us(),
                    h.min_us().unwrap_or(0.0),
                    h.max_us().unwrap_or(0.0),
                    h.overflow_count(),
                    h.quantile_us(0.50).unwrap_or(0.0),
                    h.quantile_us(0.99).unwrap_or(0.0),
                );
            }
        }
    }
    out
}

/// Exports the per-frame summary log as CSV. The header is the union of
/// every row's field names (in first-seen order); missing fields are empty.
pub fn export_frames_csv() -> String {
    let frames = frame_snapshot();
    let mut columns: Vec<String> = Vec::new();
    for row in &frames {
        for (key, _) in &row.fields {
            if !columns.contains(key) {
                columns.push(key.clone());
            }
        }
    }
    let mut out = String::from("frame");
    for c in &columns {
        let _ = write!(out, ",{c}");
    }
    out.push('\n');
    for row in &frames {
        let _ = write!(out, "{}", row.index);
        for c in &columns {
            out.push(',');
            if let Some((_, v)) = row.fields.iter().find(|(k, _)| k == c) {
                let _ = write!(out, "{v}");
            }
        }
        out.push('\n');
    }
    out
}

/// A histogram quantile as JSON: the sketch estimate, or `null` when the
/// histogram holds no finite sample.
fn json_quantile(h: &Histogram, q: f64) -> String {
    h.quantile_us(q).map_or_else(|| "null".to_string(), json_f64)
}

/// Serializes a finite float as plain JSON (no exponent-free guarantees
/// needed — `{:?}` always emits a valid JSON number for finite values);
/// non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_key(out: &mut String, first: &mut bool, name: &str, indent: usize) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
    for _ in 0..indent {
        out.push(' ');
    }
    out.push_str(&json_string(name));
    out.push_str(": ");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_emits_valid_numbers() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
