//! The metrics registry: counters, gauges and fixed-bucket histograms keyed
//! by name.
//!
//! [`Registry`] is a plain data structure (no global state) so it can be
//! unit- and property-tested in isolation; the process-wide instance lives
//! in [`crate::collector`]. Keys are stored as owned strings but looked up
//! by `&str`, so the hot path allocates only on a metric's first touch.

use std::collections::BTreeMap;

use crate::sketch::QuantileSketch;

/// Histogram bucket upper bounds, microseconds. A 1-2-5 ladder from 1 µs to
/// 10 s: wide enough for both real span durations (sub-millisecond FFTs) and
/// simulated frame latencies (hundreds of milliseconds).
pub const BUCKET_BOUNDS_US: [f64; 22] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5,
    2e5, 5e5, 1e6, 2e6, 5e6, 1e7,
];

/// A fixed-bucket latency histogram (bounds: [`BUCKET_BOUNDS_US`], plus one
/// overflow bucket) with an embedded [`QuantileSketch`] so every latency
/// metric exposes accurate p50/p90/p99/p99.9 alongside the legacy buckets.
///
/// Samples past the last fixed bound are no longer silently clipped into
/// the final bucket: they still land there (keeping the bucket-sum
/// invariant the exporters rely on) but are *also* counted explicitly by
/// [`Histogram::overflow_count`], and the sketch retains their true
/// magnitude, so the tail stays honest.
///
/// # Examples
///
/// ```
/// use holoar_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3.0);
/// h.record(150.0);
/// h.record(5e7); // beyond the last fixed bound
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts().iter().sum::<u64>(), 3);
/// assert_eq!(h.overflow_count(), 1);
/// assert!(h.quantile_us(0.99).unwrap() > 1e7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS_US.len() + 1],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Finite samples beyond the last fixed bucket bound.
    overflow: u64,
    /// Non-finite samples (NaN/±∞), absorbed by the last bucket.
    non_finite: u64,
    sketch: QuantileSketch,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS_US.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            overflow: 0,
            non_finite: 0,
            sketch: QuantileSketch::default(),
        }
    }

    /// Records one observation (microseconds). Non-finite values are
    /// counted in the overflow bucket rather than poisoning min/max/sum.
    pub fn record(&mut self, value_us: f64) {
        self.count += 1;
        if !value_us.is_finite() {
            self.non_finite += 1;
            *self.counts.last_mut().expect("overflow bucket") += 1;
            return;
        }
        self.sum += value_us;
        self.min = self.min.min(value_us);
        self.max = self.max.max(value_us);
        self.sketch.record(value_us.max(0.0));
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| value_us <= bound)
            .unwrap_or_else(|| {
                self.overflow += 1;
                BUCKET_BOUNDS_US.len()
            });
        self.counts[idx] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite observations, microseconds.
    pub fn sum_us(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations, microseconds (0 when empty).
    ///
    /// Historically the denominator excluded the whole final bucket, which
    /// wrongly dropped *finite* overflow samples; with overflow now counted
    /// explicitly, only non-finite samples are excluded.
    pub fn mean_us(&self) -> f64 {
        let finite = self.count - self.non_finite;
        if finite > 0 {
            self.sum / finite as f64
        } else {
            0.0
        }
    }

    /// Smallest finite observation (`None` when empty).
    pub fn min_us(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation (`None` when empty).
    pub fn max_us(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Per-bucket counts: one per bound in [`BUCKET_BOUNDS_US`] plus a final
    /// overflow bucket. Always sums to [`Histogram::count`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Finite samples beyond the last fixed bucket bound. These were
    /// silently clipped into the final bucket before; now the clipping is
    /// visible in exports.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Non-finite (NaN/±∞) samples.
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Quantile estimate over the finite samples from the embedded sketch
    /// (relative error ≤ [`crate::sketch::DEFAULT_ALPHA`]); `None` when no
    /// finite sample was recorded.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }

    /// The embedded quantile sketch (mergeable, order-independent).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }
}

/// One named metric.
///
/// The histogram variant dominates the enum's size (fixed bucket array);
/// that is fine here — metrics live once per name inside the registry map,
/// never in bulk collections, so boxing would only add a pointer chase to
/// every record on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Fixed-bucket latency histogram (microseconds).
    Histogram(Histogram),
}

/// A name-keyed metrics registry.
///
/// Name collisions across kinds resolve in favour of the first-registered
/// kind: a `counter_add` on a name holding a gauge is ignored (and counted
/// under the `telemetry.type_conflicts` counter by the collector wrapper).
///
/// # Examples
///
/// ```
/// use holoar_telemetry::{Metric, Registry};
///
/// let mut r = Registry::new();
/// r.counter_add("frames", 1);
/// r.counter_add("frames", 2);
/// assert_eq!(r.get("frames"), Some(&Metric::Counter(3)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    map: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero on first touch.
    /// Returns `false` (and leaves the metric alone) if the name holds a
    /// non-counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) -> bool {
        match self.entry(name, || Metric::Counter(0)) {
            Metric::Counter(v) => {
                *v = v.saturating_add(delta);
                true
            }
            _ => false,
        }
    }

    /// Sets a gauge. Returns `false` if the name holds a non-gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) -> bool {
        match self.entry(name, || Metric::Gauge(0.0)) {
            Metric::Gauge(v) => {
                *v = value;
                true
            }
            _ => false,
        }
    }

    /// Records into a histogram. Returns `false` if the name holds a
    /// non-histogram.
    pub fn histogram_record(&mut self, name: &str, value_us: f64) -> bool {
        match self.entry(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => {
                h.record(value_us);
                true
            }
            _ => false,
        }
    }

    /// The metric under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.map.get(name)
    }

    /// The counter value under `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.map.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Iterates `(name, metric)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every metric.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Looks up `name`, inserting `default()` (with one key allocation) on
    /// first touch.
    fn entry(&mut self, name: &str, default: impl FnOnce() -> Metric) -> &mut Metric {
        if !self.map.contains_key(name) {
            self.map.insert(name.to_string(), default());
        }
        self.map.get_mut(name).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        assert!(r.counter_add("hits", 1));
        assert!(r.counter_add("hits", 4));
        assert_eq!(r.counter("hits"), 5);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge_set("planes", 16.0);
        r.gauge_set("planes", 7.0);
        assert_eq!(r.get("planes"), Some(&Metric::Gauge(7.0)));
    }

    #[test]
    fn kind_conflicts_are_rejected_not_clobbered() {
        let mut r = Registry::new();
        r.counter_add("x", 2);
        assert!(!r.gauge_set("x", 1.0));
        assert!(!r.histogram_record("x", 1.0));
        assert_eq!(r.counter("x"), 2);
    }

    #[test]
    fn histogram_buckets_cover_the_ladder() {
        let mut h = Histogram::new();
        // One value per bucket bound, plus one overflow.
        for &b in &BUCKET_BOUNDS_US {
            h.record(b);
        }
        h.record(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] * 10.0);
        assert_eq!(h.count(), BUCKET_BOUNDS_US.len() as u64 + 1);
        assert!(h.bucket_counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn histogram_stats_track_min_max_mean() {
        let mut h = Histogram::new();
        h.record(10.0);
        h.record(30.0);
        assert_eq!(h.min_us(), Some(10.0));
        assert_eq!(h.max_us(), Some(30.0));
        assert_eq!(h.mean_us(), 20.0);
    }

    #[test]
    fn histogram_tolerates_non_finite_values() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 3);
        assert_eq!(h.min_us(), Some(5.0));
        assert_eq!(h.sum_us(), 5.0);
    }

    #[test]
    fn overflow_and_non_finite_are_counted_explicitly() {
        let mut h = Histogram::new();
        h.record(5.0);
        h.record(5e7); // finite, beyond the 1e7 µs ladder top
        h.record(f64::NAN);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.non_finite_count(), 1);
        // The bucket-sum invariant is unchanged: both still land in the
        // final bucket.
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 3);
        assert_eq!(h.bucket_counts()[BUCKET_BOUNDS_US.len()], 2);
        // The mean now includes the finite overflow sample.
        assert_eq!(h.mean_us(), (5.0 + 5e7) / 2.0);
    }

    #[test]
    fn histogram_quantiles_come_from_the_sketch() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p99 = h.quantile_us(0.99).unwrap();
        assert!((p99 - 990.0).abs() <= 990.0 * 0.01 + 1e-9, "p99 {p99}");
        assert!(h.quantile_us(0.5).unwrap() < p99);
        assert_eq!(Histogram::new().quantile_us(0.5), None);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = Registry::new();
        r.counter_add("b", 1);
        r.counter_add("a", 1);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
