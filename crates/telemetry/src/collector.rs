//! The process-wide collector: one monotonic epoch, the completed-span
//! buffer, the metrics [`Registry`] and the per-frame summary log.
//!
//! Everything lives behind a `OnceLock` so a process that never enables
//! telemetry never allocates any of it. Span capture is bounded
//! ([`MAX_SPANS`]) so a long evaluation run with `full` telemetry cannot
//! grow memory without limit — overflow is counted, never silently ignored.

use std::borrow::Cow;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::Registry;

/// Upper bound on retained span records; overflow increments the
/// `telemetry.spans.dropped` counter.
pub const MAX_SPANS: usize = 1_000_000;

/// Upper bound on retained per-frame summary rows.
pub const MAX_FRAMES: usize = 100_000;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (the stage it measures, e.g. `optics.gsw.iteration`).
    pub name: Cow<'static, str>,
    /// Category (Chrome-trace `cat`): `fft`, `optics`, `core`, `pipeline`,
    /// `gpu`, …
    pub cat: &'static str,
    /// Telemetry thread id (small dense integers; GPU bridge tracks use
    /// ids ≥ [`crate::span::EXTERNAL_TID_BASE`]).
    pub tid: u32,
    /// Unique span id.
    pub id: u32,
    /// Enclosing span's id on the same thread, if any.
    pub parent: Option<u32>,
    /// Start time, nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// One per-frame summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRow {
    /// Frame index the row describes.
    pub index: u64,
    /// `(field, value)` pairs in recording order.
    pub fields: Vec<(String, f64)>,
}

struct Collector {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    registry: Mutex<Registry>,
    frames: Mutex<Vec<FrameRow>>,
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        registry: Mutex::new(Registry::new()),
        frames: Mutex::new(Vec::new()),
    })
}

/// Nanoseconds since the collector epoch (the first telemetry touch).
pub fn now_ns() -> u64 {
    collector().epoch.elapsed().as_nanos() as u64
}

/// Runs `f` against the process-wide metrics registry.
pub fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    f(&mut collector().registry.lock().expect("telemetry registry lock"))
}

/// Appends a completed span (drops and counts once [`MAX_SPANS`] is hit).
pub(crate) fn push_span(record: SpanRecord) {
    let c = collector();
    {
        let mut spans = c.spans.lock().expect("telemetry span lock");
        if spans.len() < MAX_SPANS {
            spans.push(record);
            return;
        }
    }
    with_registry(|r| r.counter_add("telemetry.spans.dropped", 1));
}

/// Number of retained span records.
pub fn span_count() -> usize {
    collector().spans.lock().expect("telemetry span lock").len()
}

/// A copy of every retained span record (unspecified order; exporters sort).
pub fn span_snapshot() -> Vec<SpanRecord> {
    collector().spans.lock().expect("telemetry span lock").clone()
}

/// Records one per-frame summary row (no-op unless telemetry is enabled).
/// Rows past [`MAX_FRAMES`] are dropped and counted.
pub fn record_frame(index: u64, fields: &[(&str, f64)]) {
    if !crate::mode::enabled() {
        return;
    }
    let c = collector();
    {
        let mut frames = c.frames.lock().expect("telemetry frame lock");
        if frames.len() < MAX_FRAMES {
            frames.push(FrameRow {
                index,
                fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            });
            return;
        }
    }
    with_registry(|r| r.counter_add("telemetry.frames.dropped", 1));
}

/// A copy of the per-frame summary log, in recording order.
pub fn frame_snapshot() -> Vec<FrameRow> {
    collector().frames.lock().expect("telemetry frame lock").clone()
}

/// Clears spans, metrics and frame rows (the epoch is preserved so
/// timestamps stay monotonic across resets). Used by tests and by the
/// `repro` binary between experiments when isolating traces.
pub fn reset() {
    let c = collector();
    c.spans.lock().expect("telemetry span lock").clear();
    c.registry.lock().expect("telemetry registry lock").clear();
    c.frames.lock().expect("telemetry frame lock").clear();
}
