//! Deterministic, mergeable log-bucketed quantile sketches.
//!
//! [`QuantileSketch`] is a DDSketch-style estimator: values land in
//! geometrically spaced buckets keyed by `ceil(ln v / ln γ)` with
//! `γ = (1 + α) / (1 − α)`, which guarantees every quantile estimate is
//! within relative error `α` of the exact order statistic. Unlike the
//! fixed 1-2-5 ladder in [`crate::metrics::Histogram`], accuracy does not
//! degrade at the tail — p99.9 is as tight as p50.
//!
//! # Determinism and mergeability
//!
//! The sketch deliberately stores **no floating-point running sum**: state
//! is integer bucket counts plus `min`/`max`, so [`QuantileSketch::merge`]
//! is exactly associative and commutative — merging per-worker or
//! per-session sketches in any order yields bit-identical state. This is
//! what lets the serving layer publish fleet-level quantiles as a merge of
//! per-session sketches while preserving the workspace replay contract
//! (bit-identical output across worker counts).
//!
//! # Examples
//!
//! ```
//! use holoar_telemetry::QuantileSketch;
//!
//! let mut s = QuantileSketch::new(0.01);
//! for v in 1..=1000 {
//!     s.record(v as f64);
//! }
//! let p99 = s.quantile(0.99).unwrap();
//! assert!((p99 - 990.0).abs() <= 0.01 * 990.0 + 1e-9);
//! ```

use std::collections::BTreeMap;

/// Default relative-accuracy parameter: estimates within 1% of exact.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Values at or below this magnitude collapse into the zero bucket (they
/// carry no useful latency information and would need unbounded negative
/// bucket keys).
pub const MIN_TRACKABLE: f64 = 1e-9;

/// A mergeable log-bucketed quantile sketch with relative-error bound `α`.
///
/// Tracks non-negative finite values; non-finite samples are counted but
/// excluded from quantiles (mirroring [`crate::metrics::Histogram`]'s
/// overflow-bucket policy).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    ln_gamma: f64,
    /// Bucket key → count. Key `k` covers `(γ^(k−1), γ^k]`.
    buckets: BTreeMap<i32, u64>,
    /// Samples in `[0, MIN_TRACKABLE]` (reported as exactly 0).
    zero_count: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// An empty sketch with relative accuracy `alpha` (clamped to a sane
    /// `[1e-6, 0.5]` range).
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(1e-6, 0.5);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative-error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one observation. Negative and non-finite values are ignored
    /// (the sketch tracks latencies/durations, which are non-negative).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= MIN_TRACKABLE {
            self.zero_count += 1;
            return;
        }
        let key = self.key_for(value);
        *self.buckets.entry(key).or_insert(0) += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch holds no observations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) with the
    /// nearest-rank rule `rank = max(1, ceil(q·count))`, matching the
    /// workspace's exact `percentile` helpers. `None` when empty. The
    /// estimate is within relative error [`Self::alpha`] of the exact
    /// order statistic.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero_count {
            return Some(0.0);
        }
        let mut cumulative = self.zero_count;
        for (&key, &count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                // Midpoint estimate for bucket k, clamped into the observed
                // range (clamping can only move the estimate toward the
                // exact value, so the α bound is preserved).
                let estimate = 2.0 * (key as f64 * self.ln_gamma).exp()
                    / ((self.ln_gamma.exp()) + 1.0);
                return Some(estimate.clamp(self.min, self.max));
            }
        }
        // Unreachable when the books balance; fall back to the maximum.
        Some(self.max)
    }

    /// The median estimate (`None` when empty).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate (`None` when empty).
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate (`None` when empty).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// The 99.9th-percentile estimate (`None` when empty).
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Merges `other` into `self`. Exactly associative and commutative:
    /// integer bucket counts add and `min`/`max` combine without any
    /// order-dependent floating-point accumulation, so any merge tree over
    /// the same sketches yields bit-identical state.
    ///
    /// Both sketches must share the same `alpha` (merging buckets across
    /// resolutions would silently corrupt the error bound).
    ///
    /// # Panics
    ///
    /// Panics if the accuracy parameters differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits(),
            "cannot merge sketches with different accuracy (α {} vs {})",
            self.alpha,
            other.alpha
        );
        for (&key, &count) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += count;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Log-bucket key for a finite `value > MIN_TRACKABLE`.
    fn key_for(&self, value: f64) -> i32 {
        let raw = (value.ln() / self.ln_gamma).ceil();
        raw.clamp(i32::MIN as f64, i32::MAX as f64) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_reports_none() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_value_is_returned_near_exactly() {
        let mut s = QuantileSketch::new(0.01);
        s.record(42.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!((est - 42.0).abs() <= 0.01 * 42.0, "q={q} est={est}");
        }
    }

    #[test]
    fn quantiles_respect_the_relative_error_bound() {
        let mut s = QuantileSketch::new(0.01);
        let mut values: Vec<f64> = (1..=5000).map(|i| (i as f64) * 0.37).collect();
        for &v in &values {
            s.record(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&values, q);
            let est = s.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= 0.01 * exact + 1e-9,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zero_and_subnormal_values_report_zero() {
        let mut s = QuantileSketch::new(0.01);
        s.record(0.0);
        s.record(1e-12);
        s.record(5.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(0.1), Some(0.0));
        assert_eq!(s.min(), Some(0.0));
    }

    #[test]
    fn negative_and_non_finite_values_are_ignored() {
        let mut s = QuantileSketch::new(0.01);
        s.record(-1.0);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_equals_recording_everything_into_one_sketch() {
        let values: Vec<f64> = (1..=300).map(|i| (i as f64).powf(1.3)).collect();
        let mut whole = QuantileSketch::new(0.01);
        let mut left = QuantileSketch::new(0.01);
        let mut right = QuantileSketch::new(0.01);
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    #[should_panic(expected = "different accuracy")]
    fn merging_mismatched_accuracy_panics() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }
}
