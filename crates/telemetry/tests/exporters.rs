//! Exporter round-trip tests: build a synthetic span tree, export it, parse
//! the JSON back with the crate's minimal reader, and check event nesting,
//! thread ids and timestamp monotonicity — plus property tests pinning the
//! histogram bucket invariant.
//!
//! All tests that touch the process-wide collector serialize through one
//! mutex: telemetry state is global per process and `cargo test` runs test
//! functions on concurrent threads.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use holoar_telemetry as telemetry;
use holoar_telemetry::jsonlite::{parse, Json};
use proptest::prelude::*;
use telemetry::TelemetryMode;

fn lock_telemetry() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

/// Builds a deterministic span tree:
///
/// ```text
/// frame
/// ├── plan
/// └── execute
///     └── kernel (x2)
/// ```
///
/// plus one bridged external GPU event, then returns the exported trace.
fn build_and_export() -> String {
    telemetry::set_mode(TelemetryMode::Full);
    telemetry::reset();
    {
        let _frame = telemetry::span_cat("test.frame", "pipeline");
        {
            let _plan = telemetry::span_cat("test.plan", "core");
        }
        {
            let _execute = telemetry::span_cat("test.execute", "core");
            for _ in 0..2 {
                let _kernel = telemetry::span_cat("test.kernel", "fft");
            }
        }
    }
    telemetry::record_external_span("gpusim", "test.gpu_kernel", "gpu", 10, 500);
    let trace = telemetry::export_chrome_trace();
    telemetry::set_mode(TelemetryMode::Off);
    trace
}

/// The `"ph": "X"` events of a parsed trace document.
fn complete_events(doc: &Json) -> Vec<&Json> {
    doc.get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect()
}

fn field_f64(event: &Json, key: &str) -> f64 {
    event.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("event field {key}"))
}

#[test]
fn span_tree_round_trips_through_chrome_trace_export() {
    let _guard = lock_telemetry();
    let trace = build_and_export();
    let doc = parse(&trace).expect("exported trace must be valid JSON");

    let events = complete_events(&doc);
    assert_eq!(events.len(), 6, "frame + plan + execute + 2 kernels + 1 gpu event");

    // Every event carries a usable span id.
    let by_id: HashMap<u64, &Json> = events
        .iter()
        .map(|e| {
            let id = e.get("args").and_then(|a| a.get("id")).and_then(Json::as_f64).unwrap();
            (id as u64, *e)
        })
        .collect();
    assert_eq!(by_id.len(), events.len(), "span ids are unique");

    let find = |name: &str| -> Vec<&Json> {
        events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .copied()
            .collect()
    };
    let frame = find("test.frame")[0];
    let plan = find("test.plan")[0];
    let execute = find("test.execute")[0];
    let kernels = find("test.kernel");
    assert_eq!(kernels.len(), 2);

    // Nesting: parent links point up the tree.
    let id_of = |e: &Json| field(e, "id");
    fn field(e: &Json, key: &str) -> f64 {
        e.get("args").and_then(|a| a.get(key)).and_then(Json::as_f64).unwrap_or(-1.0)
    }
    assert_eq!(field(frame, "parent"), -1.0, "root has no parent");
    assert_eq!(field(plan, "parent"), id_of(frame));
    assert_eq!(field(execute, "parent"), id_of(frame));
    for k in &kernels {
        assert_eq!(field(k, "parent"), id_of(execute));
    }

    // Nesting: children are contained within their parents' time ranges.
    for (child, parent) in
        [(plan, frame), (execute, frame), (kernels[0], execute), (kernels[1], execute)]
    {
        let (cts, cdur) = (field_f64(child, "ts"), field_f64(child, "dur"));
        let (pts, pdur) = (field_f64(parent, "ts"), field_f64(parent, "dur"));
        assert!(cts >= pts, "child starts within parent");
        assert!(cts + cdur <= pts + pdur + 1e-6, "child ends within parent");
    }

    // Thread ids: all CPU spans on this one test thread, the GPU event on a
    // synthetic external track.
    let tids: Vec<f64> = [frame, plan, execute, kernels[0], kernels[1]]
        .iter()
        .map(|e| field_f64(e, "tid"))
        .collect();
    assert!(tids.windows(2).all(|w| w[0] == w[1]), "one CPU thread: {tids:?}");
    let gpu = find("test.gpu_kernel")[0];
    assert!(field_f64(gpu, "tid") >= 1_000_000.0, "external track id");
    assert_eq!(gpu.get("cat").and_then(Json::as_str), Some("gpu"));

    // Monotonic timestamps in document order (the exporter sorts).
    let ts: Vec<f64> = events.iter().map(|e| field_f64(e, "ts")).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted timestamps: {ts:?}");
    assert!(ts.iter().all(|&t| t >= 0.0));

    // The external GPU track is named in metadata.
    assert!(trace.contains("thread_name"));
    assert!(trace.contains("gpusim"));
}

#[test]
fn metrics_json_round_trips_counters_gauges_histograms_and_frames() {
    let _guard = lock_telemetry();
    telemetry::set_mode(TelemetryMode::Full);
    telemetry::reset();
    telemetry::counter_add("test.hits", 3);
    telemetry::gauge_set("test.planes", 6.5);
    telemetry::histogram_record_us("test.latency", 120.0);
    telemetry::histogram_record_us("test.latency", 3.0);
    telemetry::record_frame(0, &[("latency_ms", 12.0), ("planes", 16.0)]);
    telemetry::record_frame(1, &[("latency_ms", 9.0), ("planes", 8.0)]);

    let json = telemetry::export_metrics_json();
    let csv = telemetry::export_metrics_csv();
    let frames_csv = telemetry::export_frames_csv();
    telemetry::set_mode(TelemetryMode::Off);

    let doc = parse(&json).expect("metrics JSON parses");
    assert_eq!(
        doc.get("counters").unwrap().get("test.hits").unwrap().as_f64(),
        Some(3.0)
    );
    assert_eq!(
        doc.get("gauges").unwrap().get("test.planes").unwrap().as_f64(),
        Some(6.5)
    );
    let hist = doc.get("histograms").unwrap().get("test.latency").unwrap();
    assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
    let buckets = hist.get("buckets").unwrap().as_array().unwrap();
    let total: f64 =
        buckets.iter().map(|b| b.get("count").unwrap().as_f64().unwrap()).sum();
    assert_eq!(total, 2.0, "bucket counts sum to the total");
    let frames = doc.get("frames").unwrap().as_array().unwrap();
    assert_eq!(frames.len(), 2);
    assert_eq!(frames[1].get("latency_ms").unwrap().as_f64(), Some(9.0));

    assert!(csv.lines().any(|l| l.starts_with("test.hits,counter,3")));
    let mut lines = frames_csv.lines();
    assert_eq!(lines.next(), Some("frame,latency_ms,planes"));
    assert_eq!(lines.next(), Some("0,12,16"));
}

#[test]
fn summary_mode_keeps_metrics_but_drops_trace_events() {
    let _guard = lock_telemetry();
    telemetry::set_mode(TelemetryMode::Summary);
    telemetry::reset();
    {
        let _s = telemetry::span("test.summary_span");
    }
    telemetry::record_external_span("gpusim", "test.gpu", "gpu", 0, 10);
    assert_eq!(telemetry::span_count(), 0, "summary retains no events");
    let has_histogram = matches!(
        telemetry::collector::with_registry(|r| r.get("test.summary_span").cloned()),
        Some(telemetry::Metric::Histogram(_))
    );
    assert!(has_histogram, "summary still feeds the span-duration histogram");
    telemetry::set_mode(TelemetryMode::Off);
}

#[test]
fn off_mode_records_nothing() {
    let _guard = lock_telemetry();
    telemetry::set_mode(TelemetryMode::Off);
    telemetry::reset();
    {
        let s = telemetry::span("test.off_span");
        assert!(!s.is_active());
    }
    telemetry::counter_add("test.off_counter", 1);
    telemetry::record_frame(0, &[("x", 1.0)]);
    assert_eq!(telemetry::span_count(), 0);
    assert_eq!(telemetry::collector::with_registry(|r| r.len()), 0);
    let doc = parse(&telemetry::export_metrics_json()).unwrap();
    assert!(doc.get("counters").unwrap().as_object().unwrap().is_empty());
}

#[test]
fn env_var_selects_each_mode() {
    let _guard = lock_telemetry();
    let original = std::env::var(telemetry::TELEMETRY_ENV_VAR).ok();
    for (value, expect) in [
        ("off", TelemetryMode::Off),
        ("summary", TelemetryMode::Summary),
        ("full", TelemetryMode::Full),
        ("nonsense", TelemetryMode::Off),
    ] {
        std::env::set_var(telemetry::TELEMETRY_ENV_VAR, value);
        assert_eq!(telemetry::mode_from_env(), expect, "HOLOAR_TELEMETRY={value}");
        assert_eq!(telemetry::init_from_env(), expect);
        assert_eq!(telemetry::mode(), expect);
    }
    std::env::remove_var(telemetry::TELEMETRY_ENV_VAR);
    assert_eq!(telemetry::mode_from_env(), TelemetryMode::Off, "unset defaults to off");
    match original {
        Some(v) => std::env::set_var(telemetry::TELEMETRY_ENV_VAR, v),
        None => std::env::remove_var(telemetry::TELEMETRY_ENV_VAR),
    }
    telemetry::set_mode(TelemetryMode::Off);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket counts always sum to the total count, for any observation
    /// sequence including non-finite values.
    #[test]
    fn histogram_buckets_always_sum_to_count(
        values in prop::collection::vec(
            (0u8..10u8, 0.0f64..2e7).prop_map(|(kind, v)| match kind {
                8 => f64::NAN,
                9 => f64::INFINITY,
                _ => v,
            }),
            0..200,
        )
    ) {
        let mut h = telemetry::Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        prop_assert_eq!(h.bucket_counts().len(), telemetry::BUCKET_BOUNDS_US.len() + 1);
    }

    /// Every finite observation lands in the bucket whose bound is the
    /// first one at or above it.
    #[test]
    fn histogram_buckets_respect_bounds(value in 0.0f64..2e7) {
        let mut h = telemetry::Histogram::new();
        h.record(value);
        let expected = telemetry::BUCKET_BOUNDS_US
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(telemetry::BUCKET_BOUNDS_US.len());
        let actual = h.bucket_counts().iter().position(|&c| c == 1).unwrap();
        prop_assert_eq!(actual, expected);
    }
}
