//! Property tests for the SLO observability primitives: quantile-sketch
//! accuracy and merge determinism, and sliding-window bookkeeping.

use holoar_telemetry::{QuantileSketch, SlidingWindow};
use proptest::prelude::*;

const ALPHA: f64 = 0.01;

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new(ALPHA);
    for &v in values {
        s.record(v);
    }
    s
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile estimates stay within the configured relative-error bound
    /// of the exact nearest-rank order statistic.
    #[test]
    fn quantiles_are_within_the_relative_error_bound(
        values in prop::collection::vec(1e-3f64..1e9, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let sketch = sketch_of(&values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, q);
        let est = sketch.quantile(q).expect("non-empty sketch");
        prop_assert!(
            (est - exact).abs() <= ALPHA * exact + 1e-12,
            "q={} est={} exact={}", q, est, exact
        );
    }

    /// Merging is order-independent: any partition of the sample stream,
    /// merged in either order, is bit-identical to one sketch fed
    /// everything. This is what makes per-worker/per-session sketches safe
    /// to combine without breaking the replay contract.
    #[test]
    fn merge_is_order_independent_and_partition_invariant(
        values in prop::collection::vec(1e-6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let (a, b) = values.split_at(split);
        let whole = sketch_of(&values);
        let (sa, sb) = (sketch_of(a), sketch_of(b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &whole);
        prop_assert_eq!(&ba, &whole);
    }

    /// Merging is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c), exactly.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(1e-6f64..1e6, 0..80),
        b in prop::collection::vec(1e-6f64..1e6, 0..80),
        c in prop::collection::vec(1e-6f64..1e6, 0..80),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The sketch books always balance: count matches the recorded stream,
    /// min/max bracket every quantile, and quantiles are monotone in q.
    #[test]
    fn sketch_books_balance(values in prop::collection::vec(0.0f64..1e7, 1..200)) {
        let sketch = sketch_of(&values);
        prop_assert_eq!(sketch.count(), values.len() as u64);
        let (min, max) = (sketch.min().unwrap(), sketch.max().unwrap());
        let mut previous = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = sketch.quantile(q).unwrap();
            prop_assert!(est >= min - 1e-12 && est <= max + 1e-12);
            prop_assert!(est >= previous, "quantiles must be monotone in q");
            previous = est;
        }
    }

    /// Sliding windows retain exactly the newest `capacity` samples and
    /// aggregate them exactly.
    #[test]
    fn window_retains_the_newest_samples(
        values in prop::collection::vec(-1e6f64..1e6, 1..120),
        capacity in 1usize..32,
    ) {
        let mut w = SlidingWindow::new(capacity);
        for (frame, &v) in values.iter().enumerate() {
            w.push(frame as u64, v);
        }
        let expected: Vec<(u64, f64)> = values
            .iter()
            .enumerate()
            .skip(values.len().saturating_sub(capacity))
            .map(|(i, &v)| (i as u64, v))
            .collect();
        let got: Vec<(u64, f64)> = w.iter().collect();
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(w.latest(), expected.last().copied());
        let sum: f64 = expected.iter().map(|&(_, v)| v).sum();
        prop_assert_eq!(w.sum(), sum);
    }
}
