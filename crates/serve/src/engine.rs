//! The serving engine: admission, the tick loop, and report assembly.
//!
//! Each *tick* is one display refresh of the shared edge device. Every
//! admitted session contributes its planned depth planes; the batcher
//! coalesces them into merged cross-session kernels; the device model
//! executes the batch once; and the tick's latency is attributed back to
//! sessions by their block share. Overload is handled in three deterministic
//! layers, gentlest first:
//!
//! 1. **Degradation** — each session's
//!    [`DegradationController`](holoar_core::DegradationController) absorbs its
//!    *own* faults (its attributed share plus its injected overruns).
//! 2. **QoS step-down** — when the whole batch overruns the budget, exactly
//!    one victim (the least-focused session) is stepped down per tick, so
//!    the fleet never degrades in lockstep.
//! 3. **Deferral** — when the batch overruns the budget by more than
//!    `defer_threshold`, sessions at the back of the scheduler's priority
//!    order are deferred (stale reprojection) until the batch fits; aging
//!    guarantees no session is deferred indefinitely.

use holoar_core::degrade::{DegradationLadder, DegradationLevel};
use holoar_core::planner::ComputePlan;
use holoar_core::{
    ExecutionContext, GazeInput, HoloArConfig, Planner, PoseInput, Scheme, SensorSample,
};
use holoar_faults::FrameFaults;
use holoar_gpusim::hologram_kernels::{merged_session_kernels, run_job};
use holoar_gpusim::timeline::session_stream_ops;
use holoar_gpusim::{calibration, simulate, Device, DeviceSpec, HologramJob};
use holoar_pipeline::executor::{run_staged, StagedConfig};
use holoar_pipeline::schedule::FrameLatencies;
use holoar_sensors::angles::AngularPoint;
use holoar_sensors::eyetrack::GazeEstimate;
use holoar_sensors::objectron::{Frame, FrameGenerator};
use holoar_sensors::pose::PoseEstimate;

use crate::admission;
use crate::batcher::PlaneBatch;
use crate::qos;
use crate::quality::QualitySampler;
use crate::report::{percentile, ServeReport, SessionReport};
use crate::scheduler::FrameScheduler;
use crate::session::{SessionSpec, SessionState};
use crate::slo::{
    self, FleetSlo, SloConfig, STAGE_BATCH, STAGE_FAULT_STRETCH, STAGE_OVERRUN,
    STAGE_QUEUE_WAIT, STAGE_REPROJECT,
};

/// Per-session hologram resolution for the serving experiments. Serving
/// targets lightweight per-eye holograms (64²) so the interesting regime —
/// many small sessions sharing one device — is reachable; the paper's 512²
/// single-user hologram saturates the device at one session.
pub const SERVE_HOLOGRAM_PIXELS: u64 = 64 * 64;

/// Frame budget for served sessions: a 90 Hz AR display refresh (the
/// [`DeviceSpec::edge`] deadline).
pub const SERVE_FRAME_BUDGET: f64 = holoar_gpusim::EDGE_FRAME_BUDGET;

/// Configuration of one serving run.
///
/// The shared device is a [`DeviceSpec`]: [`DeviceSpec::edge`] is the
/// serving default — Xavier-class SMs, but 32 of them, an edge-server
/// accelerator rather than a headset SoC. Per-session 64² plane kernels
/// span 16 blocks, so a single session leaves most of the device idle;
/// cross-session batching is what fills it — and a ~16-session fleet
/// saturates it, exercising the QoS and deferral layers.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Requested sessions, in admission-priority order.
    pub specs: Vec<SessionSpec>,
    /// Ticks to simulate.
    pub frames: u64,
    /// The shared device spec — model, standing slowdown and the per-tick
    /// deadline ([`DeviceSpec::budget`]).
    pub device: DeviceSpec,
    /// Per-session hologram resolution.
    pub hologram_pixels: u64,
    /// Lockstep GSW iteration count (batching requirement).
    pub gsw_iterations: u32,
    /// Full-quality planner configuration each session degrades from.
    pub base: HoloArConfig,
    /// Degradation ladder instantiated per session.
    pub ladder: DegradationLadder,
    /// Admission headroom multiplier on the frame budget (> 1 trusts
    /// degradation to absorb a bounded overload).
    pub overload_factor: f64,
    /// Deferral trigger as a multiple of the frame budget.
    pub defer_threshold: f64,
    /// Recovery-hold band as a fraction of the frame budget: while the
    /// batch runs hotter than this, session step-ups are held so a
    /// thundering herd of recoveries cannot push the fleet back over the
    /// deadline it just shed its way under.
    pub hold_margin: f64,
    /// SLO parameters: deadline-hit objective, burn windows and thresholds,
    /// sketch accuracy.
    pub slo: SloConfig,
    /// Bound of each session's stale-backlog queue (and of the per-session
    /// staged executor's ingest → compute queue): how many ticks of owed
    /// fresh content a session tolerates before saturation forces a
    /// `"queue-saturated"` step-down.
    pub session_queue: usize,
}

impl ServeConfig {
    /// A serving run of the given session specs on the given device, at the
    /// serving defaults. Heterogeneous session mixes are expressed by
    /// passing explicit specs; the common uniform case is
    /// `ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(n, seed), frames)`.
    pub fn fleet(device: DeviceSpec, specs: Vec<SessionSpec>, frames: u64) -> Self {
        ServeConfig {
            specs,
            frames,
            device,
            hologram_pixels: SERVE_HOLOGRAM_PIXELS,
            gsw_iterations: calibration::GSW_ITERATIONS,
            base: HoloArConfig::for_scheme(Scheme::InterIntraHolo).without_reuse(),
            ladder: DegradationLadder {
                frame_budget: device.budget(),
                ..DegradationLadder::default()
            },
            overload_factor: 2.0,
            defer_threshold: 1.5,
            hold_margin: 0.85,
            slo: SloConfig::default(),
            session_queue: 3,
        }
    }

    /// The per-tick deadline in seconds — the device spec's frame budget.
    pub fn frame_budget(&self) -> f64 {
        self.device.budget()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.specs.is_empty() {
            return Err("serving needs at least one session".into());
        }
        if self.frames == 0 {
            return Err("serving needs at least one tick".into());
        }
        if self.hologram_pixels == 0 {
            return Err("sessions must cover at least one pixel".into());
        }
        if self.gsw_iterations == 0 {
            return Err("GSW needs at least one iteration".into());
        }
        if !self.overload_factor.is_finite() || self.overload_factor < 1.0 {
            return Err("overload factor must be at least 1".into());
        }
        if !self.defer_threshold.is_finite() || self.defer_threshold < 1.0 {
            return Err("defer threshold must be at least 1".into());
        }
        if !(self.hold_margin > 0.0 && self.hold_margin <= 1.0) {
            return Err("hold margin must be in (0, 1]".into());
        }
        if self.session_queue == 0 {
            return Err("session queue bound must be at least 1".into());
        }
        self.slo.validate()?;
        self.device.validate()?;
        self.ladder.validate()?;
        self.base.validate()
    }
}

/// A fixated nominal sensor sample: gaze on the first object (as in the
/// quality studies), pose centered.
pub(crate) fn nominal_sample(frame: &Frame) -> SensorSample {
    let gaze = frame.objects.first().map(|o| o.direction).unwrap_or(AngularPoint::CENTER);
    SensorSample {
        pose: PoseInput::Tracked(PoseEstimate {
            orientation: AngularPoint::CENTER,
            latency: 0.01375,
        }),
        gaze: GazeInput::Tracked(GazeEstimate { direction: gaze, latency: 0.0044 }),
    }
}

/// Fraction of planned objects inside the region of focus (1.0 for an empty
/// plan — nothing peripheral to shed).
pub(crate) fn plan_focus(plan: &ComputePlan) -> f64 {
    if plan.items.is_empty() {
        return 1.0;
    }
    let in_rof = plan.items.iter().filter(|it| it.in_rof).count();
    in_rof as f64 / plan.items.len() as f64
}

/// Collapses a plan into the session's tick job: total computed planes at
/// the plane-weighted mean coverage.
pub(crate) fn session_job(pixels: u64, gsw_iterations: u32, plan: &ComputePlan) -> HologramJob {
    let mut planes = 0u64;
    let mut weighted_coverage = 0.0;
    for item in plan.items.iter().filter(|it| it.needs_compute()) {
        planes += u64::from(item.planes);
        weighted_coverage += f64::from(item.planes) * item.coverage;
    }
    let coverage = if planes == 0 {
        1.0
    } else {
        (weighted_coverage / planes as f64).clamp(f64::MIN_POSITIVE, 1.0)
    };
    HologramJob {
        pixels,
        plane_count: planes.min(u64::from(u32::MAX)) as u32,
        coverage,
        gsw_iterations,
    }
}

/// A no-work placeholder keeping batch indices aligned with sessions.
pub(crate) fn idle_job(pixels: u64, gsw_iterations: u32) -> HologramJob {
    HologramJob { pixels, plane_count: 0, coverage: 1.0, gsw_iterations }
}

/// Sum of kernel wall times for one batch on `device`.
pub(crate) fn batch_time(device: &mut Device, kernels: &[holoar_gpusim::KernelDesc]) -> f64 {
    device.execute_all(kernels).iter().map(|s| s.time).sum()
}

struct TickSession {
    faults: FrameFaults,
    job: HologramJob,
    reprojecting: bool,
}

/// Runs the multi-session serving loop and reports fleet and per-session
/// outcomes. Deterministic for a given configuration: identical reports at
/// any worker count (the only parallel fan-outs are the bit-identical
/// quality and pipeline evaluations).
///
/// # Errors
///
/// Returns a description of the first invalid configuration field or
/// internal model construction failure.
pub fn run_serve(config: &ServeConfig, ctx: &ExecutionContext) -> Result<ServeReport, String> {
    let _span = holoar_telemetry::span_cat("serve.run", "serve");
    config.validate()?;
    let requested = config.specs.len();

    // -- admission: probe each session's full-quality first frame ----------
    let mut probe_jobs = Vec::with_capacity(requested);
    for spec in &config.specs {
        let frame = FrameGenerator::new(spec.video, spec.seed)
            .next()
            .ok_or("frame generator must be infinite")?;
        let sample = nominal_sample(&frame);
        let plan = Planner::new(config.base)?.plan_frame_with(&frame, &sample);
        probe_jobs.push(session_job(config.hologram_pixels, config.gsw_iterations, &plan));
    }
    let device_cfg = config.device.config();
    let mut est_device = Device::new(device_cfg).map_err(|e| e.to_string())?;
    let mut estimates = Vec::with_capacity(requested);
    for k in 1..=requested {
        let kernels = merged_session_kernels(&probe_jobs[..k]);
        estimates.push(batch_time(&mut est_device, &kernels));
    }
    let admitted = admission::admit_count(&estimates, config.frame_budget(), config.overload_factor);
    holoar_telemetry::counter_add("serve.admission.admitted", admitted as u64);
    holoar_telemetry::counter_add("serve.admission.rejected", (requested - admitted) as u64);
    holoar_telemetry::gauge_set("serve.sessions.active", admitted as f64);

    // -- state ------------------------------------------------------------
    let mut states = Vec::with_capacity(admitted);
    for spec in &config.specs[..admitted] {
        states.push(SessionState::new(
            *spec,
            config.ladder,
            config.slo,
            config.frames,
            config.session_queue,
        )?);
    }
    let mut scheduler = FrameScheduler::new(admitted);
    let mut device = Device::new(device_cfg).map_err(|e| e.to_string())?;
    let mut seq_device = Device::new(device_cfg).map_err(|e| e.to_string())?;
    let mut batched_time_total = 0.0;
    let mut sequential_time_total = 0.0;
    let mut occupancy_sum = 0.0;
    let mut occupancy_ticks = 0u64;
    let mut merged_launches = 0u64;
    let mut launches_saved = 0u64;
    // Fleet-level sliding windows, keyed by tick index (replay-safe).
    let mut hit_window = holoar_telemetry::SlidingWindow::new(config.slo.fast_window.max(1));
    let mut queue_window = holoar_telemetry::SlidingWindow::new(config.slo.fast_window.max(1));
    let mut occupancy_window =
        holoar_telemetry::SlidingWindow::new(config.slo.fast_window.max(1));

    // -- tick loop --------------------------------------------------------
    for tick in 0..config.frames {
        let _tick = holoar_telemetry::span_cat("serve.tick", "serve");
        let order = scheduler.order(tick);

        // Phase 1: sense, decide, plan — fixed session-id order so every
        // generator and injector advances identically regardless of
        // scheduling history.
        let mut ticks = Vec::with_capacity(admitted);
        for state in states.iter_mut() {
            let frame = state.generator.next().ok_or("frame generator must be infinite")?;
            let faults = state.injector.frame(tick);
            let sample = faults.degrade_sensors(&nominal_sample(&frame));
            let level = state.ctl.decide(tick);
            state.frames_at_level[level.index()] += 1;
            state.level_window.push(tick, level.index() as f64);
            let (job, reprojecting) = match state.ctl.config_for(&config.base) {
                Some(level_cfg) => {
                    let plan = Planner::new(level_cfg)?.plan_frame_with(&frame, &sample);
                    state.observe_focus(plan_focus(&plan));
                    (session_job(config.hologram_pixels, config.gsw_iterations, &plan), false)
                }
                // LastGood: re-present the previous hologram, no fresh planes.
                None => (idle_job(config.hologram_pixels, config.gsw_iterations), true),
            };
            ticks.push(TickSession { faults, job, reprojecting });
        }

        // Phase 2: deferral — shed from the back of the priority order until
        // the batch fits the deferral threshold, always keeping at least one
        // fresh session.
        let mut deferred = vec![false; admitted];
        loop {
            let jobs: Vec<HologramJob> = (0..admitted)
                .map(|i| {
                    if deferred[i] {
                        idle_job(config.hologram_pixels, config.gsw_iterations)
                    } else {
                        ticks[i].job
                    }
                })
                .collect();
            let kernels = merged_session_kernels(&jobs);
            let estimate = batch_time(&mut est_device, &kernels);
            if estimate <= config.frame_budget() * config.defer_threshold {
                break;
            }
            let active: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| !deferred[i] && ticks[i].job.plane_count > 0)
                .collect();
            let Some(&victim) = active.last().filter(|_| active.len() > 1) else {
                break;
            };
            deferred[victim] = true;
        }

        // Phase 3: batched execution on the shared device.
        let jobs: Vec<HologramJob> = (0..admitted)
            .map(|i| {
                if deferred[i] {
                    idle_job(config.hologram_pixels, config.gsw_iterations)
                } else {
                    ticks[i].job
                }
            })
            .collect();
        let batch = PlaneBatch::build(jobs);
        let batch_latency = batch_time(&mut device, &batch.kernels);
        merged_launches += batch.kernels.len() as u64;
        launches_saved += batch.launches_saved();
        let tick_occupancy = if batch.has_work() {
            let timeline = simulate(&session_stream_ops(&batch.jobs), &device_cfg);
            occupancy_sum += timeline.mean_occupancy();
            occupancy_ticks += 1;
            holoar_telemetry::gauge_set("serve.tick.occupancy", timeline.mean_occupancy());
            timeline.mean_occupancy()
        } else {
            0.0
        };
        occupancy_window.push(tick, tick_occupancy);
        queue_window.push(tick, deferred.iter().filter(|&&d| d).count() as f64);

        // Sequential baseline: the same (pre-deferral) workload as N
        // independent per-plane pipelines time-slicing the device.
        for t in &ticks {
            if t.job.plane_count > 0 {
                sequential_time_total += run_job(&mut seq_device, &t.job).latency;
            } else {
                sequential_time_total += config.ladder.reproject_latency;
            }
        }
        batched_time_total += batch_latency.max(config.ladder.reproject_latency);

        // Phase 4: per-session attribution and accounting.
        let mut tick_hits = 0u64;
        for i in 0..admitted {
            let t = &ticks[i];
            let state = &mut states[i];
            let fresh = !deferred[i] && !t.reprojecting;
            let completion = if fresh {
                // The session's own faults stretch its share of the batch
                // (its stream's kernels run derated) and add its injected
                // stage overrun; the shared remainder runs at speed.
                let slowdown = 1.0 / (t.faults.clock_scale * t.faults.dram_scale);
                batch_latency + (slowdown - 1.0) * batch.shares[i] * batch_latency
                    + t.faults.stage_overrun
            } else {
                config.ladder.reproject_latency
            };
            // The controller sees only this session's attributed cost, so
            // one tenant's bad tick cannot stampede every ladder at once.
            let observed = if fresh {
                let slowdown = 1.0 / (t.faults.clock_scale * t.faults.dram_scale);
                batch.shares[i] * batch_latency * slowdown + t.faults.stage_overrun
            } else {
                config.ladder.reproject_latency
            };
            state.ctl.observe(tick, observed);
            // Stale-backlog queue: every tick without fresh content joins
            // the session's bounded drop-oldest queue; fresh service drains
            // it (the client has caught up). The controller watches the
            // depth — reprojection keeps `observed` cheap, so a starved
            // session otherwise looks perfectly healthy while its content
            // ages. Saturation forces a "queue-saturated" step-down, which
            // sheds planes and lets the batch (and this session) fit again.
            if fresh {
                while state.backlog.pop().is_some() {}
            } else if state.backlog.push(tick).is_some() {
                state.queue_drops += 1;
            }
            state.ctl.observe_queue_depth(state.backlog.len(), state.backlog.bound());
            let hit = !deferred[i] && completion <= config.frame_budget() + 1e-12;
            if deferred[i] {
                state.deferred += 1;
                holoar_telemetry::counter_add("serve.frames.deferred", 1);
            } else {
                state.served += 1;
                holoar_telemetry::counter_add("serve.frames.served", 1);
            }
            if hit {
                state.deadline_hits += 1;
                tick_hits += 1;
                holoar_telemetry::counter_add("serve.deadline.hit", 1);
            } else {
                holoar_telemetry::counter_add("serve.deadline.miss", 1);
            }
            state.latencies.push(completion);
            // SLO bookkeeping and the synthesized profile span tree. The
            // stage decomposition partitions `completion` exactly: own batch
            // share + co-tenant queue wait + fault stretch + injected
            // overrun for fresh frames, reprojection otherwise.
            state.slo.observe(tick, hit, completion);
            let stages: Vec<(&'static str, f64)> = if fresh {
                let slowdown = 1.0 / (t.faults.clock_scale * t.faults.dram_scale);
                let own = batch.shares[i] * batch_latency;
                [
                    (STAGE_BATCH, own),
                    (STAGE_QUEUE_WAIT, batch_latency - own),
                    (STAGE_FAULT_STRETCH, (slowdown - 1.0) * own),
                    (STAGE_OVERRUN, t.faults.stage_overrun),
                ]
                .into_iter()
                .filter(|&(_, seconds)| seconds > 0.0)
                .collect()
            } else {
                vec![(STAGE_REPROJECT, config.ladder.reproject_latency)]
            };
            slo::record_frame_spans(
                &mut state.profile,
                state.spec.id,
                tick,
                config.frame_budget(),
                &stages,
            );
            scheduler.feedback(i, hit);
        }
        hit_window.push(tick, tick_hits as f64 / admitted.max(1) as f64);

        // Phase 5: QoS — an overloaded tick steps down exactly one victim,
        // the least-focused session not already at the ladder floor, and
        // holds everyone else's level: stepping up against a saturated
        // device would outpace the one-victim-per-tick shedding.
        if batch_latency > config.frame_budget() {
            let focus: Vec<f64> = states.iter().map(|s| s.focus).collect();
            let eligible: Vec<bool> = (0..admitted)
                .map(|i| {
                    !deferred[i]
                        && !ticks[i].reprojecting
                        && states[i].ctl.level() != DegradationLevel::LastGood
                })
                .collect();
            let level: Vec<usize> = states.iter().map(|s| s.ctl.level().index()).collect();
            let victim = qos::pick_victim(&focus, &level, &eligible);
            for (i, state) in states.iter_mut().enumerate() {
                if victim == Some(i) {
                    state.ctl.request_step_down_with("qos-batch-overrun");
                    state.qos_step_downs += 1;
                    holoar_telemetry::counter_add("serve.qos.step_down", 1);
                } else {
                    state.ctl.hold_level();
                }
            }
        } else if batch_latency > config.hold_margin * config.frame_budget() {
            // Inside the hysteresis band: no shedding needed, but recoveries
            // are held so the fleet settles just under the deadline instead
            // of oscillating across it.
            for state in states.iter_mut() {
                state.ctl.hold_level();
            }
        }
    }

    // -- aggregate --------------------------------------------------------
    let total_frames = admitted as u64 * config.frames;
    let aggregate_fps = total_frames as f64 / batched_time_total.max(f64::MIN_POSITIVE);
    let sequential_fps = total_frames as f64 / sequential_time_total.max(f64::MIN_POSITIVE);
    holoar_telemetry::gauge_set("serve.throughput_fps", aggregate_fps);

    let mut sampler = QualitySampler::new();
    let mut sessions = Vec::with_capacity(admitted);
    let mut all_latencies = Vec::with_capacity(total_frames as usize);
    let mut hits_total = 0u64;
    for state in &states {
        let spec = state.spec;
        // Quality probes replay the session's first frame (nominal sensors)
        // at every level the session actually visited.
        let frame = FrameGenerator::new(spec.video, spec.seed)
            .next()
            .ok_or("frame generator must be infinite")?;
        let sample = nominal_sample(&frame);
        let mut level_psnr = [0.0f64; 4];
        for level in DegradationLevel::ALL {
            let idx = level.index();
            let needed = state.frames_at_level[idx] > 0 || level == DegradationLevel::Full;
            if !needed {
                continue;
            }
            // LastGood re-presents content last computed at the ladder
            // floor, so it inherits the floor's quality.
            let probe_level = match level {
                DegradationLevel::LastGood => DegradationLevel::FloorBeta,
                other => other,
            };
            let level_cfg = config.ladder.apply(probe_level, &config.base);
            let plan = Planner::new(level_cfg)?.plan_frame_with(&frame, &sample);
            level_psnr[idx] = sampler.plan_psnr(&plan, &level_cfg, ctx);
        }
        let psnr_full = level_psnr[DegradationLevel::Full.index()];
        let psnr_weighted = DegradationLevel::ALL
            .iter()
            .map(|l| state.frames_at_level[l.index()] as f64 * level_psnr[l.index()])
            .sum::<f64>()
            / config.frames as f64;

        let latencies = &state.latencies;
        // Client-side staged executor: the session's served hologram stream
        // replayed through the ingest ∥ compute ∥ present pipeline, with the
        // same queue bound the serving backlog uses. Virtual-time scheduling
        // keeps this bit-identical at any worker count.
        let staged_cfg = StagedConfig {
            compute_queue: config.session_queue,
            ..StagedConfig::default()
        };
        let pipeline = run_staged(
            config.frames,
            &staged_cfg,
            |i| FrameLatencies {
                pose: calibration::stage_latency::POSE_ESTIMATE,
                eye: calibration::stage_latency::EYE_TRACK,
                scene: 0.0,
                hologram: latencies[i as usize],
            },
            ctx,
        );

        hits_total += state.deadline_hits;
        all_latencies.extend_from_slice(latencies);
        let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        sessions.push(SessionReport {
            id: spec.id,
            video: spec.video.name(),
            frames: config.frames,
            served: state.served,
            deferred: state.deferred,
            deadline_hits: state.deadline_hits,
            hit_rate: state.deadline_hits as f64 / config.frames as f64,
            frames_at_level: state.frames_at_level,
            qos_step_downs: state.qos_step_downs,
            max_overruns_without_stepdown: state.ctl.max_overruns_without_stepdown(),
            mean_latency,
            p99_latency: percentile(latencies, 0.99),
            psnr_weighted,
            psnr_full,
            queue_drops: state.queue_drops,
            pipeline_fps: pipeline.throughput_fps,
            pipeline_stale: pipeline.stale_frames,
            slo: slo::session_slo(
                &state.slo,
                &state.profile,
                state.ctl.transitions(),
                &state.level_window,
                config.frame_budget(),
            ),
        });
    }

    // Fleet SLO: merge the per-session sketches (same α, so the merge is
    // exact) and pool the error budget over every session-frame.
    let mut fleet_sketch = holoar_telemetry::QuantileSketch::new(config.slo.sketch_alpha);
    let mut slo_frames = 0u64;
    let mut slo_misses = 0u64;
    let mut fast_burn_events = 0u64;
    let mut slow_burn_events = 0u64;
    for state in &states {
        fleet_sketch.merge(state.slo.latency_sketch());
        slo_frames += state.slo.frames();
        slo_misses += state.slo.misses();
        fast_burn_events +=
            state.slo.burn_events().iter().filter(|e| e.window == "fast").count() as u64;
        slow_burn_events +=
            state.slo.burn_events().iter().filter(|e| e.window == "slow").count() as u64;
    }
    let error_budget_remaining = if slo_frames == 0 {
        1.0
    } else {
        1.0 - slo_misses as f64 / ((1.0 - config.slo.target) * slo_frames as f64)
    };
    let fleet_slo = FleetSlo {
        target: config.slo.target,
        sketch_alpha: config.slo.sketch_alpha,
        latency_p50: fleet_sketch.p50().unwrap_or(0.0),
        latency_p90: fleet_sketch.p90().unwrap_or(0.0),
        latency_p99: fleet_sketch.p99().unwrap_or(0.0),
        latency_p999: fleet_sketch.p999().unwrap_or(0.0),
        error_budget_remaining,
        fast_burn_events,
        slow_burn_events,
        recent_hit_rate: hit_window.mean().unwrap_or(1.0),
        recent_queue_depth: queue_window.mean().unwrap_or(0.0),
        recent_occupancy: occupancy_window.mean().unwrap_or(0.0),
    };
    holoar_telemetry::gauge_set("slo.error_budget.remaining", error_budget_remaining);
    holoar_telemetry::gauge_set("slo.window.hit_rate", fleet_slo.recent_hit_rate);
    holoar_telemetry::gauge_set("slo.window.queue_depth", fleet_slo.recent_queue_depth);
    holoar_telemetry::gauge_set("slo.window.occupancy", fleet_slo.recent_occupancy);

    Ok(ServeReport {
        requested,
        admitted,
        frames: config.frames,
        sessions,
        aggregate_fps,
        sequential_fps,
        speedup_vs_sequential: aggregate_fps / sequential_fps.max(f64::MIN_POSITIVE),
        deadline_hit_rate: hits_total as f64 / (total_frames as f64).max(1.0),
        latency_p50: percentile(&all_latencies, 0.50),
        latency_p99: percentile(&all_latencies, 0.99),
        mean_occupancy: if occupancy_ticks == 0 {
            0.0
        } else {
            occupancy_sum / occupancy_ticks as f64
        },
        merged_launches,
        launches_saved,
        slo: fleet_slo,
    })
}
