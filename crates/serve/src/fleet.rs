//! Multi-device fleet serving: placement, re-probing, and live migration.
//!
//! The fleet multiplexes a churning session population across K simulated
//! edge devices. Where the single-device engine ([`crate::engine`]) owns
//! one device's tick in full kernel-level detail, the fleet works at the
//! admission-probe granularity the paper's on-the-fly optimization makes
//! composable: each session's cost is *probed* (planned at full quality and
//! priced on its host's device model), cached, and periodically
//! **re-probed** so placement decisions track content drift instead of the
//! one-shot admission estimate single-device serving uses. Per tick, every
//! device's latency is the batch-discounted sum of its hosted sessions'
//! shed-scaled costs — the same launch-amortization effect the
//! single-device batcher measures, collapsed to a closed form so thousands
//! of sessions stay tractable.
//!
//! Three layers respond to trouble, gentlest first:
//!
//! 1. **Degradation** — each session's own ladder absorbs its attributed
//!    share (exactly the single-device contract).
//! 2. **QoS step-down** — an overrunning device steps down one victim per
//!    tick and holds the rest, so a device never degrades in lockstep.
//! 3. **Migration** — a device whose *probed* load exceeds the migration
//!    threshold sheds its newest tenant to the best other device; a device
//!    that dies (fault-injected or scheduled) evacuates everything. Every
//!    migration is charged a state-transfer blackout (latency surcharge +
//!    one-level step down) and recorded as a signal-attributed transition.
//!
//! Everything is virtual-time and sequential over `BTreeMap` state, so runs
//! are bit-identical across reruns, worker counts, and any shuffling of the
//! load schedule (the fleet re-sorts it).

use std::collections::BTreeMap;

use holoar_core::degrade::{
    DegradationController, DegradationLadder, DegradationLevel, TransitionReason,
};
use holoar_core::{HoloArConfig, Planner, Scheme};
use holoar_faults::{scenario, FaultInjector};
use holoar_gpusim::hologram_kernels::run_job;
use holoar_gpusim::{calibration, Device, DeviceSpec, HologramJob};
use holoar_sensors::objectron::{Frame, FrameGenerator, VideoCategory};

use crate::engine::{nominal_sample, session_job, SERVE_HOLOGRAM_PIXELS};
use crate::load::{self, LoadConfig};
use crate::migration::{
    pick_overload_victim, MigrationRecord, SIG_DEVICE_KILL, SIG_DEVICE_OVERLOAD,
};
use crate::placement::{place, DeviceView};
use crate::report::percentile;
use crate::session::SessionSpec;

/// Recovery-hold band as a fraction of the device budget (the
/// single-device engine's hysteresis, reused verbatim).
const HOLD_MARGIN: f64 = 0.85;

/// Configuration of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The devices, heterogeneity welcome — each spec carries its own SM
    /// count, standing slowdown and frame budget.
    pub devices: Vec<DeviceSpec>,
    /// Ticks to simulate (one tick = one 90 Hz refresh, fleet-wide).
    pub frames: u64,
    /// Master seed: session identity, load timing, fault streams.
    pub seed: u64,
    /// Offered load: arrivals, departures, diurnal ramp.
    pub load: LoadConfig,
    /// Full-quality planner configuration each session degrades from.
    pub base: HoloArConfig,
    /// Degradation ladder instantiated per session.
    pub ladder: DegradationLadder,
    /// Per-session hologram resolution.
    pub hologram_pixels: u64,
    /// Lockstep GSW iteration count.
    pub gsw_iterations: u32,
    /// Admission headroom: a session is admitted to a device while the
    /// probed load stays within `overload_factor × budget`.
    pub overload_factor: f64,
    /// Re-probe cadence in ticks: each session is re-planned and re-priced
    /// every `reprobe_every` ticks, striped by session id so probe cost is
    /// amortized across ticks. `0` disables re-probing.
    pub reprobe_every: u64,
    /// Migration trigger: a device whose probed load exceeds
    /// `migrate_factor × budget` sheds its newest tenant (at most one per
    /// device per tick). Must be ≥ `overload_factor` to leave admission a
    /// working band.
    pub migrate_factor: f64,
    /// State-transfer blackout charged to a migrated session's first frame
    /// on the new host, seconds.
    pub migration_cost: f64,
    /// Placement score credit for a device already hosting a same-category
    /// session (launch amortization; see [`crate::placement`]).
    pub locality_bonus: f64,
    /// Cross-session batch amortization on one device: per-session
    /// effective cost scales by `batch_discount + (1 - batch_discount)/n`
    /// for `n` fresh co-tenants, in `(0, 1]` (1 = no amortization).
    pub batch_discount: f64,
    /// A scheduled mid-run kill `(device index, tick)` — the acceptance
    /// scenario's deterministic failure, independent of the fault seed.
    pub kill: Option<(usize, u64)>,
    /// Drive each device's own fault injector
    /// ([`scenario::fleet_device`]): SM-slowdown / DRAM-contention windows,
    /// plus [`holoar_faults::FaultKind::DeviceKill`] windows when
    /// `kill_probability` > 0.
    pub device_faults: bool,
    /// Per-window device-kill probability for the injector-driven kill
    /// path (0 disables; requires `device_faults`).
    pub kill_probability: f64,
}

impl FleetConfig {
    /// A K-device fleet of [`DeviceSpec::edge`] devices under the default
    /// diurnal load of `sessions` total sessions, at the fleet defaults:
    /// re-probe every 16 ticks, device interference faults on, no kill.
    pub fn sweep(k: usize, sessions: u32, frames: u64, seed: u64) -> Self {
        FleetConfig {
            devices: vec![DeviceSpec::edge(); k],
            frames,
            seed,
            load: LoadConfig::diurnal(sessions, seed),
            base: HoloArConfig::for_scheme(Scheme::InterIntraHolo).without_reuse(),
            ladder: DegradationLadder {
                frame_budget: DeviceSpec::edge().budget(),
                ..DegradationLadder::default()
            },
            hologram_pixels: SERVE_HOLOGRAM_PIXELS,
            gsw_iterations: calibration::GSW_ITERATIONS,
            overload_factor: 2.0,
            reprobe_every: 16,
            migrate_factor: 2.5,
            migration_cost: 0.004,
            locality_bonus: 0.05,
            batch_discount: 0.30,
            kill: None,
            device_faults: true,
            kill_probability: 0.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices.is_empty() {
            return Err("a fleet needs at least one device".into());
        }
        for (i, spec) in self.devices.iter().enumerate() {
            spec.validate().map_err(|e| format!("device {i}: {e}"))?;
        }
        if self.frames == 0 {
            return Err("a fleet run needs at least one tick".into());
        }
        self.load.validate()?;
        if self.hologram_pixels == 0 {
            return Err("sessions must cover at least one pixel".into());
        }
        if self.gsw_iterations == 0 {
            return Err("GSW needs at least one iteration".into());
        }
        if !self.overload_factor.is_finite() || self.overload_factor < 1.0 {
            return Err("overload factor must be at least 1".into());
        }
        if !self.migrate_factor.is_finite() || self.migrate_factor < self.overload_factor {
            return Err("migrate factor must be at least the overload factor".into());
        }
        if !(self.migration_cost >= 0.0 && self.migration_cost.is_finite()) {
            return Err("migration cost must be finite and non-negative".into());
        }
        if !(self.locality_bonus >= 0.0 && self.locality_bonus.is_finite()) {
            return Err("locality bonus must be finite and non-negative".into());
        }
        if !(self.batch_discount > 0.0 && self.batch_discount <= 1.0) {
            return Err("batch discount must be in (0, 1]".into());
        }
        if let Some((device, _)) = self.kill {
            if device >= self.devices.len() {
                return Err(format!("scheduled kill names device {device} of {}", self.devices.len()));
            }
        }
        if !(0.0..=1.0).contains(&self.kill_probability) {
            return Err("kill probability must be in [0, 1]".into());
        }
        self.ladder.validate()?;
        self.base.validate()
    }
}

/// Per-device outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device index.
    pub id: usize,
    /// SMs (from the spec's derived config).
    pub sm_count: u32,
    /// Tick the device died, if it did.
    pub killed_at: Option<u64>,
    /// Most sessions hosted at once.
    pub peak_sessions: u32,
    /// Session-frames presented from this device.
    pub presented: u64,
    /// Deadline-hit rate of those frames (1.0 for an idle device).
    pub hit_rate: f64,
}

/// Outcome of one fleet run. `Debug`-formatting the report is the
/// byte-identity surface the property tests compare.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Devices configured.
    pub devices: usize,
    /// Sessions offered by the load schedule.
    pub offered: usize,
    /// Sessions admitted at least once.
    pub admitted: usize,
    /// Arrivals turned away (no device had admission headroom).
    pub rejected: u64,
    /// Sessions dropped because no live device remained to host them.
    pub orphaned: u64,
    /// Ticks simulated.
    pub frames: u64,
    /// Session-frames presented (fresh or reprojected).
    pub presented: u64,
    /// Fresh (non-reprojected) session-frames — the throughput numerator.
    pub fresh: u64,
    /// Presented frames that met their device's deadline.
    pub deadline_hits: u64,
    /// `deadline_hits / presented`.
    pub hit_rate: f64,
    /// Fresh frames per second of virtual wall time (ticks × 90 Hz budget).
    pub aggregate_fps: f64,
    /// Median presented-frame completion latency, seconds.
    pub latency_p50: f64,
    /// p99 presented-frame completion latency, seconds.
    pub latency_p99: f64,
    /// Total live migrations.
    pub migrations: u64,
    /// Migrations forced by device deaths.
    pub kill_migrations: u64,
    /// Migrations draining overloaded devices.
    pub overload_migrations: u64,
    /// Admission re-probes performed.
    pub reprobes: u64,
    /// Devices that died, as `(device, tick)` in death order.
    pub killed: Vec<(usize, u64)>,
    /// Most sessions live at once.
    pub peak_active: u32,
    /// Ladder transitions with reason `Migration` across all sessions —
    /// the property tests pin this equal to `migrations`.
    pub migration_transitions: u64,
    /// Per-device outcomes.
    pub per_device: Vec<DeviceReport>,
    /// Every migration, in order.
    pub migration_events: Vec<MigrationRecord>,
}

struct FleetDevice {
    spec: DeviceSpec,
    /// Nominal device model used to price probe jobs.
    probe: Device,
    injector: Option<FaultInjector>,
    dead: bool,
    killed_at: Option<u64>,
    /// Probed full-quality load estimate, seconds per tick (placement's
    /// least-loaded signal; maintained incrementally).
    est_load: f64,
    hosted: u32,
    peak_hosted: u32,
    presented: u64,
    hits: u64,
}

struct FleetSession {
    spec: SessionSpec,
    ctl: DegradationController,
    generator: FrameGenerator,
    injector: FaultInjector,
    device: usize,
    arrived: u64,
    departs: u64,
    /// Last probed full-quality job (re-priced on migration).
    job: HologramJob,
    /// Probed full-quality solo cost on the current host, seconds.
    cost: f64,
    just_migrated: bool,
    presented: u64,
    fresh: u64,
    hits: u64,
    // Per-tick scratch, rewritten each tick before use.
    effective: f64,
    overrun: f64,
    reprojecting: bool,
}

/// Prices `job` on a device model: its solo run latency, or the
/// reprojection cost for an empty job.
fn price(probe: &mut Device, job: &HologramJob, ladder: &DegradationLadder) -> f64 {
    if job.plane_count == 0 {
        ladder.reproject_latency
    } else {
        run_job(probe, job).latency
    }
}

/// Placement snapshot: every device's probed load, liveness, and how many
/// of its tenants stream `video`.
fn device_views(
    devices: &[FleetDevice],
    sessions: &BTreeMap<u32, FleetSession>,
    video: VideoCategory,
) -> Vec<DeviceView> {
    let mut same = vec![0u32; devices.len()];
    for s in sessions.values() {
        if s.spec.video == video {
            same[s.device] += 1;
        }
    }
    devices
        .iter()
        .enumerate()
        .map(|(d, dev)| DeviceView {
            load: dev.est_load,
            budget: dev.spec.budget(),
            alive: !dev.dead,
            same_video: same[d],
        })
        .collect()
}

/// Runs the fleet loop. Deterministic for a given configuration: the loop
/// is sequential virtual-time over ordered state, so reports are
/// bit-identical across reruns and worker counts.
///
/// # Errors
///
/// Returns a description of the first invalid configuration field or
/// internal model construction failure.
pub fn run_fleet(config: &FleetConfig) -> Result<FleetReport, String> {
    let _span = holoar_telemetry::span_cat("fleet.run", "fleet");
    config.validate()?;
    let k = config.devices.len();

    let mut devices = Vec::with_capacity(k);
    for (d, spec) in config.devices.iter().enumerate() {
        let injector = if config.device_faults {
            Some(if config.kill_probability > 0.0 {
                scenario::fleet_device_with_kill(config.seed, d as u32, config.kill_probability)?
            } else {
                scenario::fleet_device(config.seed, d as u32)?
            })
        } else {
            None
        };
        devices.push(FleetDevice {
            spec: *spec,
            probe: Device::new(spec.config()).map_err(|e| e.to_string())?,
            injector,
            dead: false,
            killed_at: None,
            est_load: 0.0,
            hosted: 0,
            peak_hosted: 0,
            presented: 0,
            hits: 0,
        });
    }

    let plans = load::schedule(&config.load, config.frames)?;
    let offered = plans.len();
    let mut next_arrival = 0usize;

    let mut sessions: BTreeMap<u32, FleetSession> = BTreeMap::new();
    let mut admitted = 0usize;
    let mut rejected = 0u64;
    let mut orphaned = 0u64;
    let mut reprobes = 0u64;
    let mut killed: Vec<(usize, u64)> = Vec::new();
    let mut migration_events: Vec<MigrationRecord> = Vec::new();
    let mut migration_transitions = 0u64;
    let mut peak_active = 0u32;
    let mut presented = 0u64;
    let mut fresh = 0u64;
    let mut deadline_hits = 0u64;
    let mut latencies: Vec<f64> = Vec::new();

    // Probes a session's full-quality plan for `frame` into (job, cost on
    // device `d`).
    let shed = config.ladder.shed;

    for tick in 0..config.frames {
        let _tick = holoar_telemetry::span_cat("fleet.tick", "fleet");

        // -- departures ---------------------------------------------------
        let departing: Vec<u32> = sessions
            .iter()
            .filter(|(_, s)| s.departs <= tick)
            .map(|(&id, _)| id)
            .collect();
        for id in departing {
            if let Some(s) = sessions.remove(&id) {
                devices[s.device].est_load -= s.cost;
                devices[s.device].hosted -= 1;
                holoar_telemetry::counter_add("fleet.sessions.departed", 1);
            }
        }

        // -- device faults, deaths, evacuation ----------------------------
        let mut stretch = vec![1.0f64; k];
        for d in 0..k {
            if devices[d].dead {
                continue;
            }
            let faults =
                devices[d].injector.as_ref().map(|i| i.frame(tick)).unwrap_or_default();
            let scheduled = config.kill == Some((d, tick));
            if faults.device_dead || scheduled {
                devices[d].dead = true;
                devices[d].killed_at = Some(tick);
                devices[d].est_load = 0.0;
                devices[d].hosted = 0;
                killed.push((d, tick));
                holoar_telemetry::counter_add("fleet.device.killed", 1);
                // Evacuate in session-id order; each evacuee lands on the
                // best surviving device (or is orphaned if none remains).
                let evacuees: Vec<u32> = sessions
                    .iter()
                    .filter(|(_, s)| s.device == d)
                    .map(|(&id, _)| id)
                    .collect();
                for id in evacuees {
                    let Some((video, job, cost)) =
                        sessions.get(&id).map(|s| (s.spec.video, s.job, s.cost))
                    else {
                        continue;
                    };
                    let views = device_views(&devices, &sessions, video);
                    match place(&views, cost, config.locality_bonus) {
                        Some(target) => {
                            let new_cost = if devices[target].spec == devices[d].spec {
                                cost
                            } else {
                                price(&mut devices[target].probe, &job, &config.ladder)
                            };
                            devices[target].est_load += new_cost;
                            devices[target].hosted += 1;
                            devices[target].peak_hosted =
                                devices[target].peak_hosted.max(devices[target].hosted);
                            if let Some(s) = sessions.get_mut(&id) {
                                s.device = target;
                                s.cost = new_cost;
                                s.just_migrated = true;
                                s.ctl.record_migration(tick, SIG_DEVICE_KILL);
                                migration_transitions += 1;
                            }
                            migration_events.push(MigrationRecord {
                                tick,
                                session: id,
                                from: d,
                                to: target,
                                signal: SIG_DEVICE_KILL,
                            });
                            holoar_telemetry::counter_add("fleet.migrations", 1);
                        }
                        None => {
                            if let Some(s) = sessions.remove(&id) {
                                migration_transitions +=
                                    count_migration_transitions(&s.ctl);
                                orphaned += 1;
                                holoar_telemetry::counter_add("fleet.sessions.orphaned", 1);
                            }
                        }
                    }
                }
            } else {
                stretch[d] = 1.0 / (faults.clock_scale * faults.dram_scale);
            }
        }

        // -- arrivals -----------------------------------------------------
        while next_arrival < plans.len() && plans[next_arrival].arrive == tick {
            let plan = plans[next_arrival];
            next_arrival += 1;
            if plan.depart <= tick {
                continue;
            }
            // Probe the session's first frame at full quality, priced on
            // the reference device model (device 0); re-priced on the
            // chosen host if its spec differs.
            let frame = FrameGenerator::new(plan.spec.video, plan.spec.seed)
                .next()
                .ok_or("frame generator must be infinite")?;
            let sample = nominal_sample(&frame);
            let planned = Planner::new(config.base)?.plan_frame_with(&frame, &sample);
            let job = session_job(config.hologram_pixels, config.gsw_iterations, &planned);
            let ref_cost = price(&mut devices[0].probe, &job, &config.ladder);
            // Greedy admission: try devices best-first until one has
            // headroom; every candidate exhausted means rejection.
            let mut views = device_views(&devices, &sessions, plan.spec.video);
            let target = loop {
                let Some(candidate) = place(&views, ref_cost, config.locality_bonus) else {
                    break None;
                };
                let dev = &devices[candidate];
                let fits = dev.est_load + ref_cost
                    <= config.overload_factor * dev.spec.budget() + 1e-12;
                if fits {
                    break Some(candidate);
                }
                views[candidate].alive = false;
            };
            let Some(target) = target else {
                rejected += 1;
                holoar_telemetry::counter_add("fleet.sessions.rejected", 1);
                continue;
            };
            let cost = if devices[target].spec == devices[0].spec {
                ref_cost
            } else {
                price(&mut devices[target].probe, &job, &config.ladder)
            };
            devices[target].est_load += cost;
            devices[target].hosted += 1;
            devices[target].peak_hosted = devices[target].peak_hosted.max(devices[target].hosted);
            admitted += 1;
            holoar_telemetry::counter_add("fleet.sessions.arrived", 1);
            sessions.insert(
                plan.spec.id,
                FleetSession {
                    spec: plan.spec,
                    ctl: DegradationController::new(config.ladder)?,
                    generator: FrameGenerator::new(plan.spec.video, plan.spec.seed),
                    injector: scenario::serve_session(plan.spec.seed, plan.spec.id)?,
                    device: target,
                    arrived: tick,
                    departs: plan.depart,
                    job,
                    cost,
                    just_migrated: false,
                    presented: 0,
                    fresh: 0,
                    hits: 0,
                    effective: 0.0,
                    overrun: 0.0,
                    reprojecting: false,
                },
            );
        }
        peak_active = peak_active.max(sessions.len() as u32);

        // -- advance sessions: sense, re-probe, decide, load --------------
        let mut loads = vec![0.0f64; k];
        let mut fresh_counts = vec![0u32; k];
        let mut reprobe_jobs: Vec<(u32, Frame)> = Vec::new();
        for (&id, s) in sessions.iter_mut() {
            let frame = s.generator.next().ok_or("frame generator must be infinite")?;
            let session_faults = s.injector.frame(tick);
            // Striped re-probe: every session re-plans at full quality
            // every `reprobe_every` ticks, offset by id.
            if config.reprobe_every > 0
                && tick > s.arrived
                && tick % config.reprobe_every == u64::from(id) % config.reprobe_every
            {
                reprobe_jobs.push((id, frame.clone()));
            }
            let level = s.ctl.decide(tick);
            s.reprojecting = level == DegradationLevel::LastGood;
            s.overrun = session_faults.stage_overrun;
            s.effective = if s.reprojecting {
                0.0
            } else {
                let session_stretch =
                    1.0 / (session_faults.clock_scale * session_faults.dram_scale);
                shed[level.index()] * s.cost * session_stretch
            };
            if !s.reprojecting {
                loads[s.device] += s.effective;
                fresh_counts[s.device] += 1;
            }
        }
        // Re-probes mutate devices, so they run after the session sweep.
        for (id, frame) in reprobe_jobs {
            let Some((device, old_cost)) = sessions.get(&id).map(|s| (s.device, s.cost)) else {
                continue;
            };
            let sample = nominal_sample(&frame);
            let planned = Planner::new(config.base)?.plan_frame_with(&frame, &sample);
            let job = session_job(config.hologram_pixels, config.gsw_iterations, &planned);
            let cost = price(&mut devices[device].probe, &job, &config.ladder);
            devices[device].est_load += cost - old_cost;
            if let Some(s) = sessions.get_mut(&id) {
                s.job = job;
                s.cost = cost;
            }
            reprobes += 1;
            holoar_telemetry::counter_add("fleet.reprobe.probes", 1);
        }

        // -- device latency: batch-discounted sum, fault-stretched --------
        let mut device_latency = vec![0.0f64; k];
        for d in 0..k {
            if fresh_counts[d] > 0 {
                let n = f64::from(fresh_counts[d]);
                let amortize = config.batch_discount + (1.0 - config.batch_discount) / n;
                device_latency[d] = loads[d] * amortize * stretch[d];
            }
        }

        // -- attribution --------------------------------------------------
        for s in sessions.values_mut() {
            let d = s.device;
            let budget = devices[d].spec.budget();
            let n = f64::from(fresh_counts[d].max(1));
            let amortize = config.batch_discount + (1.0 - config.batch_discount) / n;
            let mut completion = if s.reprojecting {
                config.ladder.reproject_latency
            } else {
                device_latency[d] + s.overrun
            };
            if s.just_migrated {
                completion += config.migration_cost;
                s.just_migrated = false;
            }
            let hit = completion <= budget + 1e-12;
            s.presented += 1;
            presented += 1;
            devices[d].presented += 1;
            if !s.reprojecting {
                s.fresh += 1;
                fresh += 1;
            }
            if hit {
                s.hits += 1;
                deadline_hits += 1;
                devices[d].hits += 1;
                holoar_telemetry::counter_add("fleet.deadline.hit", 1);
            } else {
                holoar_telemetry::counter_add("fleet.deadline.miss", 1);
            }
            latencies.push(completion);
            // The controller sees only this session's attributed share.
            let observed = if s.reprojecting {
                config.ladder.reproject_latency
            } else {
                s.effective * amortize * stretch[d] + s.overrun
            };
            s.ctl.observe(tick, observed);
        }

        // -- QoS: one victim per overrunning device -----------------------
        for d in 0..k {
            if devices[d].dead {
                continue;
            }
            let budget = devices[d].spec.budget();
            if device_latency[d] > budget {
                // Deepest effective cost, ties to the lower id.
                let victim = sessions
                    .iter()
                    .filter(|(_, s)| {
                        s.device == d
                            && !s.reprojecting
                            && s.ctl.level() != DegradationLevel::LastGood
                    })
                    .max_by(|(a_id, a), (b_id, b)| {
                        a.effective
                            .total_cmp(&b.effective)
                            .then(b_id.cmp(a_id))
                    })
                    .map(|(&id, _)| id);
                for (&id, s) in sessions.iter_mut() {
                    if s.device != d {
                        continue;
                    }
                    if Some(id) == victim {
                        s.ctl.request_step_down_with("fleet-batch-overrun");
                        holoar_telemetry::counter_add("fleet.qos.step_down", 1);
                    } else {
                        s.ctl.hold_level();
                    }
                }
            } else if device_latency[d] > HOLD_MARGIN * budget {
                for s in sessions.values_mut() {
                    if s.device == d {
                        s.ctl.hold_level();
                    }
                }
            }
        }

        // -- overload migration: newest tenant off a hot device -----------
        for d in 0..k {
            if devices[d].dead || loads[d] <= config.migrate_factor * devices[d].spec.budget() {
                continue;
            }
            let tenants: Vec<(u32, u64)> = sessions
                .iter()
                .filter(|(_, s)| s.device == d)
                .map(|(&id, s)| (id, s.arrived))
                .collect();
            let Some(victim) = pick_overload_victim(&tenants) else {
                continue;
            };
            let Some((video, job, cost)) =
                sessions.get(&victim).map(|s| (s.spec.video, s.job, s.cost))
            else {
                continue;
            };
            let mut views = device_views(&devices, &sessions, video);
            views[d].alive = false; // never "migrate" in place
            let Some(target) = place(&views, cost, config.locality_bonus) else {
                continue;
            };
            let fits = devices[target].est_load + cost
                <= config.overload_factor * devices[target].spec.budget() + 1e-12;
            if !fits {
                continue; // no better home; keep absorbing via QoS
            }
            let new_cost = if devices[target].spec == devices[d].spec {
                cost
            } else {
                price(&mut devices[target].probe, &job, &config.ladder)
            };
            devices[d].est_load -= cost;
            devices[d].hosted -= 1;
            devices[target].est_load += new_cost;
            devices[target].hosted += 1;
            devices[target].peak_hosted =
                devices[target].peak_hosted.max(devices[target].hosted);
            if let Some(s) = sessions.get_mut(&victim) {
                s.device = target;
                s.cost = new_cost;
                s.just_migrated = true;
                s.ctl.record_migration(tick, SIG_DEVICE_OVERLOAD);
                migration_transitions += 1;
            }
            migration_events.push(MigrationRecord {
                tick,
                session: victim,
                from: d,
                to: target,
                signal: SIG_DEVICE_OVERLOAD,
            });
            holoar_telemetry::counter_add("fleet.migrations", 1);
        }

        holoar_telemetry::gauge_set(
            "fleet.devices.live",
            devices.iter().filter(|dev| !dev.dead).count() as f64,
        );
        holoar_telemetry::gauge_set("fleet.sessions.active", sessions.len() as f64);
    }

    // Sessions alive at run end contribute their migration transitions too
    // (migrated-then-departed sessions were counted at the migration site).
    let wall = config.frames as f64 * DeviceSpec::edge().budget();
    let aggregate_fps = fresh as f64 / wall.max(f64::MIN_POSITIVE);
    holoar_telemetry::gauge_set("fleet.throughput_fps", aggregate_fps);

    let kill_migrations =
        migration_events.iter().filter(|m| m.signal == SIG_DEVICE_KILL).count() as u64;
    let overload_migrations = migration_events.len() as u64 - kill_migrations;
    let per_device = devices
        .iter()
        .enumerate()
        .map(|(id, dev)| DeviceReport {
            id,
            sm_count: dev.spec.config().sm_count,
            killed_at: dev.killed_at,
            peak_sessions: dev.peak_hosted,
            presented: dev.presented,
            hit_rate: if dev.presented == 0 {
                1.0
            } else {
                dev.hits as f64 / dev.presented as f64
            },
        })
        .collect();

    Ok(FleetReport {
        devices: k,
        offered,
        admitted,
        rejected,
        orphaned,
        frames: config.frames,
        presented,
        fresh,
        deadline_hits,
        hit_rate: if presented == 0 { 1.0 } else { deadline_hits as f64 / presented as f64 },
        aggregate_fps,
        latency_p50: percentile(&latencies, 0.50),
        latency_p99: percentile(&latencies, 0.99),
        migrations: migration_events.len() as u64,
        kill_migrations,
        overload_migrations,
        reprobes,
        killed,
        peak_active,
        migration_transitions,
        per_device,
        migration_events,
    })
}

/// Migration-reason transitions recorded on one controller.
fn count_migration_transitions(ctl: &DegradationController) -> u64 {
    ctl.transitions()
        .iter()
        .filter(|t| t.reason == TransitionReason::Migration)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_fleets() {
        assert!(FleetConfig { devices: vec![], ..FleetConfig::sweep(1, 4, 10, 1) }
            .validate()
            .is_err());
        assert!(FleetConfig { migrate_factor: 1.0, ..FleetConfig::sweep(2, 4, 10, 1) }
            .validate()
            .is_err());
        assert!(FleetConfig { kill: Some((9, 5)), ..FleetConfig::sweep(2, 4, 10, 1) }
            .validate()
            .is_err());
        assert!(FleetConfig::sweep(2, 4, 10, 1).validate().is_ok());
    }

    #[test]
    fn a_small_fleet_serves_and_reprobes() {
        let report = run_fleet(&FleetConfig::sweep(2, 6, 48, 42)).unwrap();
        assert_eq!(report.devices, 2);
        assert_eq!(report.offered, 6);
        assert!(report.admitted > 0);
        assert!(report.fresh > 0);
        assert!(report.reprobes > 0, "re-probing must actually happen");
        assert!(report.hit_rate > 0.5, "hit rate collapsed: {}", report.hit_rate);
        assert_eq!(report.presented, report.per_device.iter().map(|d| d.presented).sum());
    }

    #[test]
    fn a_scheduled_kill_migrates_every_hosted_session() {
        let config = FleetConfig { kill: Some((0, 20)), ..FleetConfig::sweep(3, 12, 60, 42) };
        let report = run_fleet(&config).unwrap();
        assert_eq!(report.killed, vec![(0, 20)]);
        assert!(report.kill_migrations > 0, "the killed device hosted nobody?");
        assert_eq!(report.migrations, report.migration_transitions);
        assert!(report
            .migration_events
            .iter()
            .all(|m| !m.signal.is_empty() && m.from != m.to));
        // The dead device presents nothing after the kill.
        let dead = &report.per_device[0];
        assert_eq!(dead.killed_at, Some(20));
    }

    #[test]
    fn reruns_are_bit_identical() {
        let config = FleetConfig { kill: Some((1, 30)), ..FleetConfig::sweep(4, 24, 80, 7) };
        let a = run_fleet(&config).unwrap();
        let b = run_fleet(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
