//! Replay-driven load generation for the fleet: seeded arrivals,
//! departures and diurnal ramps.
//!
//! The generator is *replay-driven* in the `sensors::trace` sense: the
//! whole schedule is a pure function of `(LoadConfig, frames)`, computed up
//! front and replayed by the fleet loop, so reruns — and any shuffling of
//! how the schedule is handed over — are bit-identical. Every session draws
//! its arrival and lifetime from its own SplitMix64-salted RNG stream
//! (exactly the per-session salting [`SessionSpec::fleet`] uses for sensor
//! randomness), so adding a session never reshuffles another's timing.

use holoar_sensors::rng::Rng;

use crate::session::SessionSpec;

/// Shape of the offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Total sessions offered over the run.
    pub sessions: u32,
    /// Master seed for session identity and the arrival/lifetime draws.
    pub seed: u64,
    /// Fraction of the run over which arrivals ramp in, in `(0, 1]`. The
    /// arrival density rises linearly across the ramp (the morning side of
    /// a diurnal curve): few sessions early, most near the ramp's end.
    pub ramp_fraction: f64,
    /// Mean session lifetime as a fraction of the run (> 0); lifetimes are
    /// exponential, so some sessions leave mid-run (departures) and some
    /// outlive the run.
    pub lifetime_fraction: f64,
}

impl LoadConfig {
    /// The default diurnal load: arrivals ramp over the first 40% of the
    /// run, mean lifetime is the full run length (most sessions stay, a
    /// visible minority churns out).
    pub fn diurnal(sessions: u32, seed: u64) -> Self {
        LoadConfig { sessions, seed, ramp_fraction: 0.4, lifetime_fraction: 1.0 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.sessions == 0 {
            return Err("load needs at least one session".into());
        }
        if !(self.ramp_fraction > 0.0 && self.ramp_fraction <= 1.0) {
            return Err("ramp fraction must be in (0, 1]".into());
        }
        if !(self.lifetime_fraction > 0.0 && self.lifetime_fraction.is_finite()) {
            return Err("lifetime fraction must be positive".into());
        }
        Ok(())
    }
}

/// One session's scheduled lifetime: who it is, when it arrives, and the
/// first tick it is gone (`depart` past the run end means it never leaves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionPlan {
    /// Session identity (video, sensor seed) — the same round-robin fleet
    /// identity single-device serving uses.
    pub spec: SessionSpec,
    /// Tick the session requests admission.
    pub arrive: u64,
    /// First tick the session is gone (departure processed before serving).
    pub depart: u64,
}

/// Generates the full arrival/departure schedule for a `frames`-tick run,
/// sorted by `(arrive, id)`. Pure function of `(config, frames)`.
///
/// # Errors
///
/// Returns the configuration's validation error.
pub fn schedule(config: &LoadConfig, frames: u64) -> Result<Vec<SessionPlan>, String> {
    config.validate()?;
    let specs = SessionSpec::fleet(config.sessions, config.seed);
    let ramp_end = (frames as f64 * config.ramp_fraction).max(1.0);
    let mean_life = (frames as f64 * config.lifetime_fraction).max(1.0);
    let mut plans = Vec::with_capacity(specs.len());
    for spec in specs {
        // Per-session stream, salted independently of the sensor seed so
        // load timing and content noise stay decorrelated.
        let mut rng = Rng::seeded(
            config
                .seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(u64::from(spec.id).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // Inverse-CDF of a linearly rising density over [0, ramp_end):
        // sqrt biases arrivals toward the ramp's end — the diurnal swell.
        let arrive = ((ramp_end * rng.uniform().sqrt()) as u64).min(frames.saturating_sub(1));
        let lifetime = rng.exponential(mean_life).max(1.0);
        let depart = arrive.saturating_add(lifetime as u64).max(arrive + 1);
        plans.push(SessionPlan { spec, arrive, depart });
    }
    plans.sort_by_key(|p| (p.arrive, p.spec.id));
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_and_sorted() {
        let cfg = LoadConfig::diurnal(48, 42);
        let a = schedule(&cfg, 150).unwrap();
        let b = schedule(&cfg, 150).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| (w[0].arrive, w[0].spec.id) <= (w[1].arrive, w[1].spec.id)));
        assert_eq!(a.len(), 48);
        assert!(a.iter().all(|p| p.depart > p.arrive));
    }

    #[test]
    fn arrivals_ramp_diurnally_and_some_sessions_churn() {
        let cfg = LoadConfig::diurnal(200, 7);
        let frames = 300u64;
        let plans = schedule(&cfg, frames).unwrap();
        let ramp_end = (frames as f64 * cfg.ramp_fraction) as u64;
        assert!(plans.iter().all(|p| p.arrive < ramp_end + 1));
        // Rising density: the second half of the ramp holds clearly more
        // arrivals than the first.
        let early = plans.iter().filter(|p| p.arrive < ramp_end / 2).count();
        let late = plans.len() - early;
        assert!(late > early, "diurnal ramp must back-load arrivals ({early} vs {late})");
        // Exponential lifetimes: some depart mid-run, some outlive it.
        let churned = plans.iter().filter(|p| p.depart < frames).count();
        assert!(churned > 0, "expected some mid-run departures");
        assert!(churned < plans.len(), "expected some sessions to outlive the run");
    }

    #[test]
    fn per_session_streams_are_independent_of_population_size() {
        let small = schedule(&LoadConfig::diurnal(8, 42), 150).unwrap();
        let large = schedule(&LoadConfig::diurnal(16, 42), 150).unwrap();
        for p in &small {
            let twin = large.iter().find(|q| q.spec.id == p.spec.id).unwrap();
            assert_eq!((twin.arrive, twin.depart), (p.arrive, p.depart), "session {}", p.spec.id);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(schedule(&LoadConfig { sessions: 0, ..LoadConfig::diurnal(1, 1) }, 10).is_err());
        let bad_ramp = LoadConfig { ramp_fraction: 0.0, ..LoadConfig::diurnal(4, 1) };
        assert!(schedule(&bad_ramp, 10).is_err());
        let bad_life = LoadConfig { lifetime_fraction: 0.0, ..LoadConfig::diurnal(4, 1) };
        assert!(schedule(&bad_life, 10).is_err());
    }
}
