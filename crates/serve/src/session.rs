//! Per-session identity and state for the serving layer.
//!
//! A *session* is one AR headset's hologram stream: its own Objectron video,
//! its own fault stream (salted from the master seed, so co-tenants fault
//! independently), and its own [`DegradationController`] — the serving layer
//! multiplexes many of these onto one simulated edge device.

use holoar_core::degrade::{DegradationController, DegradationLadder};
use holoar_faults::{scenario, FaultInjector};
use holoar_pipeline::queue::BoundedQueue;
use holoar_sensors::objectron::{FrameGenerator, VideoCategory};
use holoar_telemetry::{SlidingWindow, SpanRecord};

use crate::slo::{SloConfig, SloTracker};

/// Identity of one client session: which video it streams and the seed its
/// sensor/fault randomness derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Stable session id (also the fault-salt input).
    pub id: u32,
    /// Objectron category the session streams.
    pub video: VideoCategory,
    /// Seed for the session's frame generator.
    pub seed: u64,
}

impl SessionSpec {
    /// A deterministic fleet of `n` sessions: videos round-robin over
    /// [`VideoCategory::ALL`], per-session seeds are SplitMix64-salted from
    /// the master seed so sessions with the same category still see
    /// different object motion.
    pub fn fleet(n: u32, seed: u64) -> Vec<SessionSpec> {
        (0..n)
            .map(|id| SessionSpec {
                id,
                video: VideoCategory::ALL[id as usize % VideoCategory::ALL.len()],
                seed: seed.wrapping_add(u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            })
            .collect()
    }
}

/// Mutable per-session serving state, advanced once per scheduler tick.
pub(crate) struct SessionState {
    pub spec: SessionSpec,
    pub ctl: DegradationController,
    pub injector: FaultInjector,
    pub generator: FrameGenerator,
    /// EWMA of the fraction of planned objects inside the region of focus —
    /// the QoS victim-selection signal (least-focused degrades first).
    pub focus: f64,
    pub frames_at_level: [u64; 4],
    pub served: u64,
    pub deferred: u64,
    pub deadline_hits: u64,
    pub qos_step_downs: u64,
    /// Per-frame hologram-stage completion latency, seconds.
    pub latencies: Vec<f64>,
    /// Ticks whose fresh content is still owed: every deferred or
    /// reprojected tick joins this bounded drop-oldest queue, and a fresh
    /// serve drains it. Saturation is the starvation signal the session's
    /// controller observes (`DegradationController::observe_queue_depth`) —
    /// without it, a starved session's own frame accounting looks clean
    /// (reprojection is cheap) while its content ages.
    pub backlog: BoundedQueue<u64>,
    /// Backlog entries displaced by drop-oldest overflow — stale ticks the
    /// session will never catch up on.
    pub queue_drops: u64,
    /// SLO bookkeeping: latency sketch, error budget, burn alerts.
    pub slo: SloTracker,
    /// Synthesized per-frame span trees for critical-path attribution.
    pub profile: Vec<SpanRecord>,
    /// Degradation-level index over the most recent window of ticks (the
    /// per-session quality time-series).
    pub level_window: SlidingWindow,
}

impl SessionState {
    pub fn new(
        spec: SessionSpec,
        ladder: DegradationLadder,
        slo: SloConfig,
        frames: u64,
        queue_bound: usize,
    ) -> Result<Self, String> {
        Ok(SessionState {
            spec,
            ctl: DegradationController::new(ladder)?,
            injector: scenario::serve_session(spec.seed, spec.id)?,
            generator: FrameGenerator::new(spec.video, spec.seed),
            focus: 1.0,
            frames_at_level: [0; 4],
            served: 0,
            deferred: 0,
            deadline_hits: 0,
            qos_step_downs: 0,
            latencies: Vec::with_capacity(frames as usize),
            backlog: BoundedQueue::new(queue_bound.max(1)),
            queue_drops: 0,
            slo: SloTracker::new(slo)?,
            profile: Vec::with_capacity(frames as usize * 3),
            level_window: SlidingWindow::new(slo.fast_window.max(1)),
        })
    }

    /// Folds a fresh focus observation into the EWMA (weight ½, matching the
    /// degradation ladder's demand filter).
    pub fn observe_focus(&mut self, focus: f64) {
        self.focus = 0.5 * self.focus + 0.5 * focus;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_decorrelated() {
        let a = SessionSpec::fleet(8, 42);
        let b = SessionSpec::fleet(8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Videos round-robin; seeds all distinct.
        assert_eq!(a[0].video, a[6].video);
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "per-session seeds must be distinct");
    }

    #[test]
    fn fleet_changes_with_the_master_seed() {
        assert_ne!(SessionSpec::fleet(4, 1)[1].seed, SessionSpec::fleet(4, 2)[1].seed);
    }
}
