//! Deterministic admission control.
//!
//! Before the serving loop starts, each requested session's full-quality
//! hologram cost is probed (first frame of its video, planned at the base
//! configuration) and the batched cost of admitting the first `k` sessions
//! is estimated on the device model. The controller admits the longest
//! prefix — spec order, so admission is deterministic — whose batched cost
//! fits inside `frame_budget × overload_factor`. The factor above 1.0 is
//! deliberate: the per-session degradation ladders recover roughly that much
//! headroom at their first shed level, so the admission gate trusts
//! degradation to absorb a bounded overload rather than rejecting sessions
//! a one-level trim could have served.

/// Admits the longest prefix of sessions whose estimated batched cost fits
/// the overloaded budget. `batched_estimates[k-1]` must be the batched cost
/// of serving the first `k` sessions together (monotone non-decreasing).
/// At least one session is always admitted when any is requested — a device
/// that cannot serve even one degraded session is a configuration error the
/// engine surfaces through the deadline-hit rate, not a reason to serve
/// nobody.
pub fn admit_count(batched_estimates: &[f64], frame_budget: f64, overload_factor: f64) -> usize {
    let threshold = frame_budget * overload_factor;
    let mut admitted = 0usize;
    for (k, &estimate) in batched_estimates.iter().enumerate() {
        if k > 0 && estimate > threshold {
            break;
        }
        admitted = k + 1;
    }
    admitted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_the_longest_fitting_prefix() {
        let est = [0.004, 0.007, 0.010, 0.014, 0.019];
        assert_eq!(admit_count(&est, 0.011, 1.0), 3);
        assert_eq!(admit_count(&est, 0.011, 2.0), 5);
    }

    #[test]
    fn always_admits_the_first_session() {
        assert_eq!(admit_count(&[9.0, 9.5], 0.011, 1.0), 1);
    }

    #[test]
    fn empty_request_admits_nobody() {
        assert_eq!(admit_count(&[], 0.011, 2.0), 0);
    }
}
