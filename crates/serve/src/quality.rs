//! Per-session quality sampling for the serving report.
//!
//! PSNR is sampled per (object, plane count) through the real optics path
//! (`holoar_core::quality::object_psnr`) and cached across sessions and
//! levels, with object geometry quantized so an object drifting a few
//! centimetres between probes reuses its sample. Values are capped at
//! [`PSNR_CAP`] so the exact-reconstruction `∞` of full-plane objects
//! averages sanely — the same convention as the bench `mean_psnr_capped`.

use std::collections::BTreeMap;

use holoar_core::planner::ComputePlan;
use holoar_core::{quality, ExecutionContext, HoloArConfig};

/// Cap applied to per-object PSNR before averaging (dB). Full-plane objects
/// reconstruct exactly (infinite PSNR); 50 dB is visually transparent.
pub const PSNR_CAP: f64 = 50.0;

/// Quantization steps per metre for cached object geometry (2 cm bins).
const GEOMETRY_BINS_PER_METER: f64 = 50.0;

/// Memoizing PSNR sampler shared across sessions and degradation levels.
#[derive(Debug, Default)]
pub struct QualitySampler {
    cache: BTreeMap<(u64, u32, u64, u64), f64>,
}

impl QualitySampler {
    /// A sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean capped PSNR over the plan's rendered objects (those with planes
    /// to compute). Skipped-periphery objects contribute nothing — the
    /// metric scores what the session actually shows. A plan with no
    /// rendered objects scores the cap (nothing to get wrong).
    pub fn plan_psnr(
        &mut self,
        plan: &ComputePlan,
        config: &HoloArConfig,
        ctx: &ExecutionContext,
    ) -> f64 {
        let _span = holoar_telemetry::span_cat("serve.quality.sample", "serve");
        let mut sum = 0.0;
        let mut count = 0u32;
        for item in plan.items.iter().filter(|it| it.planes > 0) {
            let obj = &item.object;
            let key = (
                obj.track_id,
                item.planes,
                (obj.distance * GEOMETRY_BINS_PER_METER).round() as u64,
                (obj.size * GEOMETRY_BINS_PER_METER).round() as u64,
            );
            let psnr = match self.cache.get(&key) {
                Some(&cached) => cached,
                None => {
                    let fresh = quality::object_psnr(obj, item.planes, config, ctx).min(PSNR_CAP);
                    self.cache.insert(key, fresh);
                    fresh
                }
            };
            sum += psnr;
            count += 1;
        }
        if count == 0 {
            PSNR_CAP
        } else {
            sum / f64::from(count)
        }
    }

    /// Distinct (object, planes) points sampled so far.
    pub fn cached_samples(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holoar_core::{Planner, Scheme, SensorSample};
    use holoar_sensors::angles::AngularPoint;
    use holoar_sensors::objectron::{FrameGenerator, VideoCategory};
    use holoar_sensors::pose::PoseEstimate;

    #[test]
    fn full_quality_plan_scores_the_cap_and_caches() {
        let config = HoloArConfig::for_scheme(Scheme::InterIntraHolo).without_reuse();
        let frame = FrameGenerator::new(VideoCategory::Shoe, 7).next().expect("infinite");
        let gaze = frame.objects.first().map(|o| o.direction).unwrap_or(AngularPoint::CENTER);
        let sample = SensorSample::tracked(
            PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 },
            gaze,
        );
        let plan = Planner::new(config).expect("valid config").plan_frame_with(&frame, &sample);
        let ctx = ExecutionContext::serial();
        let mut sampler = QualitySampler::new();
        let psnr = sampler.plan_psnr(&plan, &config, &ctx);
        assert!(psnr > 0.0 && psnr <= PSNR_CAP, "psnr {psnr} out of range");
        let cached = sampler.cached_samples();
        assert!(cached > 0);
        // Second pass over the same plan is served from cache.
        let again = sampler.plan_psnr(&plan, &config, &ctx);
        assert_eq!(psnr, again);
        assert_eq!(sampler.cached_samples(), cached);
    }

    #[test]
    fn empty_plan_scores_the_cap() {
        let ctx = ExecutionContext::serial();
        let config = HoloArConfig::for_scheme(Scheme::InterIntraHolo);
        assert_eq!(QualitySampler::new().plan_psnr(&ComputePlan::default(), &config, &ctx), PSNR_CAP);
    }
}
