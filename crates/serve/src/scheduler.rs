//! Deterministic frame scheduler: round-robin with deadline-aware priority
//! aging.
//!
//! Each tick the scheduler orders the admitted sessions. The base order is a
//! rotating round-robin (so no session is structurally last forever); a
//! session that missed its deadline or was deferred gains one unit of *age*
//! per tick until it is served on time, and aged sessions sort ahead of the
//! rotation. When the device is overloaded the engine defers sessions from
//! the *back* of this order — so deferral lands on recently-served,
//! low-priority sessions and a starved session bubbles to the front.

/// Round-robin order with priority aging. All state is integral, so the
/// schedule is bit-identical for a given (tick, feedback) history.
#[derive(Debug, Clone)]
pub struct FrameScheduler {
    ages: Vec<u32>,
}

impl FrameScheduler {
    /// A scheduler over `n` sessions, all starting unaged.
    pub fn new(n: usize) -> Self {
        FrameScheduler { ages: vec![0; n] }
    }

    /// Priority order for this tick: sessions sorted by descending age, ties
    /// broken by the rotated round-robin position (tick rotates the start),
    /// then by session index. First in the returned order is served first
    /// and deferred last.
    pub fn order(&self, tick: u64) -> Vec<usize> {
        let n = self.ages.len();
        if n == 0 {
            return Vec::new();
        }
        let start = (tick % n as u64) as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| {
            let rotated = (i + n - start) % n;
            (std::cmp::Reverse(self.ages[i]), rotated, i)
        });
        order
    }

    /// Feedback after the tick: an on-time session resets its age, a missed
    /// or deferred one ages by one.
    pub fn feedback(&mut self, session: usize, on_time: bool) {
        if on_time {
            self.ages[session] = 0;
        } else {
            self.ages[session] = self.ages[session].saturating_add(1);
        }
    }

    /// Current age of a session (ticks since it was last served on time,
    /// counting only missed/deferred ticks).
    pub fn age(&self, session: usize) -> u32 {
        self.ages[session]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaged_order_is_a_rotating_round_robin() {
        let s = FrameScheduler::new(4);
        assert_eq!(s.order(0), vec![0, 1, 2, 3]);
        assert_eq!(s.order(1), vec![1, 2, 3, 0]);
        assert_eq!(s.order(2), vec![2, 3, 0, 1]);
        assert_eq!(s.order(6), vec![2, 3, 0, 1]);
    }

    #[test]
    fn aged_sessions_jump_the_rotation() {
        let mut s = FrameScheduler::new(4);
        s.feedback(3, false);
        s.feedback(3, false);
        s.feedback(1, false);
        // Age 2 beats age 1 beats the rotation.
        assert_eq!(s.order(0), vec![3, 1, 0, 2]);
        // Serving session 3 on time resets it.
        s.feedback(3, true);
        assert_eq!(s.order(0), vec![1, 0, 2, 3]);
    }

    #[test]
    fn order_is_deterministic() {
        let mut a = FrameScheduler::new(7);
        let mut b = FrameScheduler::new(7);
        for t in 0..50u64 {
            let miss = (t % 3) as usize;
            a.feedback(miss, false);
            b.feedback(miss, false);
            assert_eq!(a.order(t), b.order(t));
        }
    }

    #[test]
    fn empty_scheduler_yields_empty_order() {
        assert!(FrameScheduler::new(0).order(9).is_empty());
    }
}
