//! Cross-session plane batcher.
//!
//! Takes one [`HologramJob`] per session (zero planes for sessions that are
//! deferred or reprojecting) and coalesces the whole tick's plane
//! propagations into the merged per-(iteration, step) kernels of
//! [`merged_session_kernels`] — amortizing launch overheads and SM drain
//! tails across the fleet instead of paying them per plane per session.

use holoar_gpusim::hologram_kernels::{batch_block_shares, merged_session_kernels};
use holoar_gpusim::{HologramJob, KernelDesc};

/// One tick's merged compute: the per-session jobs, the merged kernel
/// sequence, and each session's block share of the batch (zero for sessions
/// contributing no planes).
#[derive(Debug, Clone)]
pub struct PlaneBatch {
    /// Per-session jobs, indexed like the engine's session list.
    pub jobs: Vec<HologramJob>,
    /// Merged kernels in (iteration, forward-then-backward) order.
    pub kernels: Vec<KernelDesc>,
    /// Per-session fraction of the batch's blocks (sums to 1 when any
    /// session has work).
    pub shares: Vec<f64>,
    /// Kernel launches the per-plane sequential schedule would have used.
    pub unbatched_launches: u64,
}

impl PlaneBatch {
    /// Builds the merged batch for one tick.
    pub fn build(jobs: Vec<HologramJob>) -> Self {
        let _span = holoar_telemetry::span_cat("serve.batch.build", "serve");
        let kernels = merged_session_kernels(&jobs);
        let shares = batch_block_shares(&jobs);
        let unbatched_launches: u64 = jobs
            .iter()
            .filter(|j| j.plane_count > 0)
            .map(|j| 2 * u64::from(j.gsw_iterations) * u64::from(j.plane_count))
            .sum();
        let merged = kernels.len() as u64;
        holoar_telemetry::counter_add("serve.batch.launches", merged);
        holoar_telemetry::counter_add(
            "serve.batch.launches_saved",
            unbatched_launches.saturating_sub(merged),
        );
        PlaneBatch { jobs, kernels, shares, unbatched_launches }
    }

    /// Whether any session contributed planes this tick.
    pub fn has_work(&self) -> bool {
        !self.kernels.is_empty()
    }

    /// Launches eliminated by merging.
    pub fn launches_saved(&self) -> u64 {
        self.unbatched_launches.saturating_sub(self.kernels.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(planes: u32) -> HologramJob {
        HologramJob { pixels: 64 * 64, plane_count: planes, coverage: 1.0, gsw_iterations: 5 }
    }

    #[test]
    fn batch_merges_to_two_kernels_per_iteration() {
        let batch = PlaneBatch::build(vec![job(12), job(0), job(20)]);
        assert!(batch.has_work());
        assert_eq!(batch.kernels.len(), 10, "2 kernels × 5 lockstep iterations");
        assert_eq!(batch.unbatched_launches, 2 * 5 * 32);
        assert_eq!(batch.launches_saved(), 320 - 10);
        assert_eq!(batch.shares[1], 0.0);
        let total: f64 = batch.shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_has_no_work() {
        let batch = PlaneBatch::build(vec![job(0), job(0)]);
        assert!(!batch.has_work());
        assert_eq!(batch.launches_saved(), 0);
    }
}
