//! Serving-run reports: per-session and fleet-level outcomes.

use crate::slo::{FleetSlo, SessionSlo};

/// Outcome of one session over a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Session id from its spec.
    pub id: u32,
    /// Objectron category name.
    pub video: &'static str,
    /// Ticks the session participated in.
    pub frames: u64,
    /// Frames served with fresh hologram content.
    pub served: u64,
    /// Frames deferred under overload (stale reprojection shown).
    pub deferred: u64,
    /// Frames whose completion met the frame budget.
    pub deadline_hits: u64,
    /// `deadline_hits / frames`.
    pub hit_rate: f64,
    /// Frames spent at each degradation level, shallow to deep.
    pub frames_at_level: [u64; 4],
    /// QoS-forced step-downs this session absorbed.
    pub qos_step_downs: u64,
    /// Longest run of consecutive budget overruns the session's controller
    /// tolerated without stepping down (the ladder invariant keeps this ≤ 1
    /// whenever shedding depth remains).
    pub max_overruns_without_stepdown: u32,
    /// Mean hologram-stage completion latency, seconds.
    pub mean_latency: f64,
    /// 99th-percentile completion latency, seconds.
    pub p99_latency: f64,
    /// Occupancy-weighted PSNR across the levels the session visited, dB
    /// (capped at the exact-reconstruction ceiling).
    pub psnr_weighted: f64,
    /// Full-quality PSNR of the same content — the single-session baseline
    /// the weighted figure is compared against.
    pub psnr_full: f64,
    /// Backlog entries displaced from the session's bounded stale-backlog
    /// queue — ticks of owed fresh content the session never caught up on.
    pub queue_drops: u64,
    /// Client-side staged-executor throughput with the served hologram
    /// stage (ingest ∥ compute ∥ present), frames per second.
    pub pipeline_fps: f64,
    /// Frames of the client-side staged replay that presented as stale
    /// reprojections (dropped from the executor's compute queue).
    pub pipeline_stale: u64,
    /// SLO summary: sketch quantiles, error budget, burn alerts, signal-
    /// annotated step-downs and critical-path attribution.
    pub slo: SessionSlo,
}

/// Fleet-level outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Sessions requested before admission.
    pub requested: usize,
    /// Sessions admitted (prefix of the request order).
    pub admitted: usize,
    /// Ticks simulated.
    pub frames: u64,
    /// Per-session outcomes, in admission order.
    pub sessions: Vec<SessionReport>,
    /// Fleet frames presented per second of device time (batched schedule).
    pub aggregate_fps: f64,
    /// Same workload served as independent per-plane sequential pipelines.
    pub sequential_fps: f64,
    /// `aggregate_fps / sequential_fps`.
    pub speedup_vs_sequential: f64,
    /// Fleet-wide fraction of frames meeting the budget.
    pub deadline_hit_rate: f64,
    /// Median completion latency across all sessions and ticks, seconds.
    pub latency_p50: f64,
    /// 99th-percentile completion latency, seconds.
    pub latency_p99: f64,
    /// Mean SM occupancy of the interleaved session timelines.
    pub mean_occupancy: f64,
    /// Merged kernel launches issued.
    pub merged_launches: u64,
    /// Launches saved versus the per-plane sequential schedule.
    pub launches_saved: u64,
    /// Fleet-level SLO summary (merged sketch quantiles, pooled error
    /// budget, burn totals, recent window figures).
    pub slo: FleetSlo,
}

/// Nearest-rank percentile of a latency population (`q` in `[0, 1]`).
/// Deterministic: total-order f64 sort, fixed rank rule. Returns 0.0 for an
/// empty population.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let pop: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&pop, 0.50), 50.0);
        assert_eq!(percentile(&pop, 0.99), 99.0);
        assert_eq!(percentile(&pop, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
