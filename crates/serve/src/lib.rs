//! Multi-session hologram serving: many AR sessions, one edge device.
//!
//! The single-user pipeline computes one hologram per frame on a dedicated
//! device. This crate multiplexes **N concurrent sessions** onto one
//! simulated edge accelerator:
//!
//! - [`admission`] — a deterministic admission controller probes each
//!   requested session's full-quality cost and admits the longest prefix
//!   the (overload-tolerant) budget can carry.
//! - [`scheduler`] — a round-robin frame scheduler with deadline-aware
//!   priority aging orders sessions each tick; overload defers the back of
//!   the order, never a starved session.
//! - [`batcher`] — same-sized depth-plane propagations from *different*
//!   sessions coalesce into single merged kernels per (GSW iteration,
//!   step), amortizing launch overheads and SM drain tails fleet-wide.
//! - [`qos`] — when a tick overruns the budget, exactly one victim (the
//!   least-focused session) is stepped down through its own
//!   `DegradationController`; the fleet never degrades in lockstep.
//! - [`quality`] — occupancy-weighted PSNR per session, sampled through the
//!   real optics path and compared against the single-session baseline.
//! - [`slo`] — per-session SLO tracking: mergeable latency quantile
//!   sketches, error-budget accounting with multi-window burn-rate alerts,
//!   and synthesized per-frame span trees whose critical path names the
//!   stage behind every missed deadline.
//! - [`fleet`] — multiplexes a churning session population across **K**
//!   devices: least-loaded + locality-aware [`placement`], periodic
//!   admission re-probing, and live session [`migration`] when a device
//!   overloads or dies, fed by the replay-driven [`load`] generator.
//!
//! Devices everywhere are described by the [`DeviceSpec`] builder, so
//! serve, faults, SLO, and fleet all construct heterogeneous hardware
//! through one vocabulary.
//!
//! The engines ([`run_serve`], [`run_fleet`]) are bit-deterministic for a
//! given configuration at any
//! [`ExecutionContext`](holoar_core::ExecutionContext) worker count.
//!
//! # Examples
//!
//! ```
//! use holoar_core::ExecutionContext;
//! use holoar_serve::{run_serve, DeviceSpec, ServeConfig, SessionSpec};
//!
//! let config =
//!     ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(2, 42), 4);
//! let ctx = ExecutionContext::serial();
//! let report = run_serve(&config, &ctx).expect("fleet config is valid");
//! assert_eq!(report.admitted, 2);
//! assert!(report.speedup_vs_sequential > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod engine;
pub mod fleet;
pub mod load;
pub mod migration;
pub mod placement;
pub mod qos;
pub mod quality;
pub mod report;
pub mod scheduler;
pub mod session;
pub mod slo;

pub use batcher::PlaneBatch;
pub use engine::{run_serve, ServeConfig, SERVE_FRAME_BUDGET, SERVE_HOLOGRAM_PIXELS};
pub use fleet::{run_fleet, DeviceReport, FleetConfig, FleetReport};
pub use holoar_gpusim::{DeviceSpec, EDGE_FRAME_BUDGET};
pub use load::{schedule, LoadConfig, SessionPlan};
pub use migration::{MigrationRecord, SIG_DEVICE_KILL, SIG_DEVICE_OVERLOAD};
pub use placement::{place, DeviceView};
pub use quality::{QualitySampler, PSNR_CAP};
pub use report::{percentile, ServeReport, SessionReport};
pub use scheduler::FrameScheduler;
pub use session::SessionSpec;
pub use slo::{
    record_frame_spans, BurnEvent, FleetSlo, SessionSlo, SloConfig, SloTracker, StageBreakdown,
};
