//! Least-loaded + locality-aware placement.
//!
//! Placement scores every live device by its *projected utilization* —
//! `(load + session_cost) / budget` — and subtracts a locality bonus when
//! the device already hosts sessions streaming the same Objectron category:
//! same-category sessions plan congruent plane geometries, so their merged
//! kernels amortize launches better (the single-device batcher's
//! `launches_saved` is exactly this effect). Ties break to the lower device
//! index, which together with the fixed candidate order makes placement a
//! pure function of its inputs.

/// A placement-time snapshot of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceView {
    /// Estimated standing load, seconds of work per tick.
    pub load: f64,
    /// Per-tick deadline, seconds.
    pub budget: f64,
    /// Whether the device is alive (dead devices never place).
    pub alive: bool,
    /// Hosted sessions streaming the candidate session's video category.
    pub same_video: u32,
}

/// Picks the device for a session of estimated solo cost `session_cost`:
/// the live device minimizing projected utilization minus the locality
/// bonus (granted once, when any same-category co-tenant exists). Returns
/// `None` when no device is alive.
pub fn place(views: &[DeviceView], session_cost: f64, locality_bonus: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (idx, view) in views.iter().enumerate() {
        if !view.alive {
            continue;
        }
        let utilization = (view.load + session_cost) / view.budget.max(f64::MIN_POSITIVE);
        let bonus = if view.same_video > 0 { locality_bonus } else { 0.0 };
        let score = utilization - bonus;
        // Strict `<` keeps the first (lowest-index) device on ties.
        if best.is_none_or(|(_, s)| score < s) {
            best = Some((idx, score));
        }
    }
    best.map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(load: f64, alive: bool, same_video: u32) -> DeviceView {
        DeviceView { load, budget: 1.0 / 90.0, alive, same_video }
    }

    #[test]
    fn least_loaded_wins_and_ties_break_low() {
        let views = [view(0.004, true, 0), view(0.002, true, 0), view(0.002, true, 0)];
        assert_eq!(place(&views, 0.001, 0.0), Some(1));
    }

    #[test]
    fn locality_bonus_attracts_same_video_sessions() {
        // Device 1 is slightly busier but hosts a same-category session.
        let views = [view(0.0020, true, 0), view(0.0021, true, 2)];
        assert_eq!(place(&views, 0.001, 0.0), Some(0), "without bonus, least-loaded wins");
        assert_eq!(place(&views, 0.001, 0.25), Some(1), "bonus flips the choice");
    }

    #[test]
    fn dead_devices_never_place() {
        let views = [view(0.0, false, 0), view(0.5, true, 0)];
        assert_eq!(place(&views, 0.001, 0.0), Some(1));
        let all_dead = [view(0.0, false, 0), view(0.0, false, 0)];
        assert_eq!(place(&all_dead, 0.001, 0.0), None);
        assert_eq!(place(&[], 0.001, 0.0), None);
    }
}
