//! Per-session QoS policy for an overloaded device.
//!
//! When a tick's batched latency overruns the frame budget, the serving
//! layer degrades **exactly one** session — the least-focused one (smallest
//! fraction of its planned objects inside the region of focus), on the
//! paper's premise that quality loss in the periphery is least perceptible.
//! One victim per tick guarantees the fleet never degrades in lockstep: the
//! overload is shed incrementally, and sessions the user is actually looking
//! at are the last to lose quality.

/// Picks the QoS victim for an overloaded tick: the eligible session with
/// the lowest focus score. Ties break toward the session already at the
/// deepest degradation level — compounding the shedding where quality was
/// already sacrificed converges in the fewest victims and leaves the most
/// sessions pristine — then toward the lower index. Sessions already at the
/// ladder floor (or deferred/reprojecting this tick) must be marked
/// ineligible by the caller. Returns `None` when nobody is eligible.
pub fn pick_victim(focus: &[f64], level: &[usize], eligible: &[bool]) -> Option<usize> {
    assert_eq!(focus.len(), eligible.len(), "focus/eligible must align");
    assert_eq!(focus.len(), level.len(), "focus/level must align");
    let mut victim: Option<usize> = None;
    for i in 0..focus.len() {
        if !eligible[i] {
            continue;
        }
        let better = match victim {
            None => true,
            Some(v) => {
                (focus[i], std::cmp::Reverse(level[i])) < (focus[v], std::cmp::Reverse(level[v]))
            }
        };
        if better {
            victim = Some(i);
        }
    }
    victim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_least_focused_eligible_session() {
        let focus = [0.9, 0.3, 0.5, 0.3];
        let level = [0usize; 4];
        assert_eq!(pick_victim(&focus, &level, &[true; 4]), Some(1), "ties break low");
        assert_eq!(pick_victim(&focus, &level, &[true, false, true, true]), Some(3));
    }

    #[test]
    fn equal_focus_compounds_on_the_deepest_level() {
        let focus = [1.0, 1.0, 1.0];
        let level = [0usize, 2, 1];
        assert_eq!(pick_victim(&focus, &level, &[true; 3]), Some(1));
        // Focus still dominates level.
        assert_eq!(pick_victim(&[1.0, 0.2, 1.0], &level, &[true; 3]), Some(1));
        assert_eq!(pick_victim(&[0.1, 1.0, 1.0], &level, &[true; 3]), Some(0));
    }

    #[test]
    fn no_eligible_session_means_no_victim() {
        assert_eq!(pick_victim(&[0.1, 0.2], &[0, 0], &[false, false]), None);
        assert_eq!(pick_victim(&[], &[], &[]), None);
    }
}
