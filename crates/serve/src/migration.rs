//! Live session migration: records, signals, and the victim policy.
//!
//! A migration moves a session's serving state to another device mid-run.
//! It is never free: the fleet charges the state-transfer blackout twice —
//! a fixed latency surcharge on the first frame served from the new host
//! (`FleetConfig::migration_cost`), and a one-level degradation step
//! recorded through
//! [`DegradationController::record_migration`](holoar_core::DegradationController::record_migration),
//! so every migration shows up as a signal-attributed transition in the
//! session's ladder history as well as in the fleet's own event log.

/// Signal attached to migrations forced by a device death.
pub const SIG_DEVICE_KILL: &str = "device-kill";

/// Signal attached to migrations that drain an overloaded device.
pub const SIG_DEVICE_OVERLOAD: &str = "device-overload";

/// One recorded migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Tick the session moved.
    pub tick: u64,
    /// Session id.
    pub session: u32,
    /// Device the session left.
    pub from: usize,
    /// Device the session landed on.
    pub to: usize,
    /// Why — [`SIG_DEVICE_KILL`] or [`SIG_DEVICE_OVERLOAD`]; the same
    /// signal annotates the session's degradation transition.
    pub signal: &'static str,
}

/// Picks the session an overloaded device sheds first: the
/// newest-arrived hosted session (ties to the higher id — the latest
/// admission). Last-in-first-out keeps long-lived sessions sticky, so
/// repeated overloads churn the same recent arrivals instead of spreading
/// blackouts across the whole tenancy. `sessions` holds
/// `(session_id, arrival_tick)` pairs; returns `None` when the device
/// hosts at most one session (migrating the last tenant would just move
/// the overload).
pub fn pick_overload_victim(sessions: &[(u32, u64)]) -> Option<u32> {
    if sessions.len() < 2 {
        return None;
    }
    sessions.iter().max_by_key(|&&(id, arrived)| (arrived, id)).map(|&(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newest_arrival_is_shed_first() {
        assert_eq!(pick_overload_victim(&[(3, 10), (7, 42), (1, 42), (9, 5)]), Some(7));
        assert_eq!(pick_overload_victim(&[(3, 10), (1, 42)]), Some(1));
    }

    #[test]
    fn a_lone_tenant_is_never_shed() {
        assert_eq!(pick_overload_victim(&[(3, 10)]), None);
        assert_eq!(pick_overload_victim(&[]), None);
    }
}
