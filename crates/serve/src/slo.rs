//! Per-session SLO tracking: latency quantile sketches, error-budget
//! accounting, multi-window burn-rate alerts, and per-frame critical-path
//! profiles.
//!
//! The serving layer's promise is an availability-style SLO — "X% of
//! frames meet the 90 Hz budget". This module does the bookkeeping the SRE
//! literature prescribes for such objectives, but over **frame index**
//! instead of wall clock so every signal replays bit-identically:
//!
//! - an error budget: a run of `N` frames at target `t` may miss at most
//!   `(1 − t) × N` deadlines; [`SloTracker::error_budget_remaining`] reports
//!   the unspent fraction (negative once overdrawn);
//! - multi-window burn rates: the miss rate over a fast (recent) and a slow
//!   (sustained) window, each normalized by the budgeted miss rate `1 − t`.
//!   Crossing a window's threshold emits one edge-triggered [`BurnEvent`]
//!   (re-armed when the burn drops back under), mirroring Google-style
//!   fast/slow-burn paging rules;
//! - a [`QuantileSketch`] of completion latencies, so per-session p50/p99/
//!   p99.9 are exact-to-α and *mergeable* into fleet quantiles;
//! - synthesized per-frame span trees ([`record_frame_spans`]) built from
//!   the simulated stage timings, so a missed deadline names the stage on
//!   its critical path (own batch share, co-tenant queue wait, fault
//!   stretch, injected overrun, or reprojection).

use std::borrow::Cow;

use holoar_core::degrade::Transition;
use holoar_telemetry::{QuantileSketch, SlidingWindow, SpanRecord, SpanTreeAnalysis};

/// Synthesized span-tree names: the per-frame root.
pub const PROFILE_FRAME: &str = "profile.frame";
/// Stage: this session's own share of the merged batch.
pub const STAGE_BATCH: &str = "profile.stage.batch";
/// Stage: waiting on co-tenants' share of the merged batch.
pub const STAGE_QUEUE_WAIT: &str = "profile.stage.queue_wait";
/// Stage: extra time from the session's injected clock/DRAM derating.
pub const STAGE_FAULT_STRETCH: &str = "profile.stage.fault_stretch";
/// Stage: the session's injected stage overrun.
pub const STAGE_OVERRUN: &str = "profile.stage.overrun";
/// Stage: stale-hologram reprojection (deferred or last-good frames).
pub const STAGE_REPROJECT: &str = "profile.stage.reproject";

/// SLO parameters for one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Deadline-hit objective in `(0, 1)`: the fraction of frames that must
    /// meet the budget.
    pub target: f64,
    /// Fast (paging-speed) burn window, frames.
    pub fast_window: usize,
    /// Slow (sustained) burn window, frames.
    pub slow_window: usize,
    /// Fast-window burn-rate alert threshold (multiples of the budgeted
    /// miss rate `1 − target`).
    pub fast_burn: f64,
    /// Slow-window burn-rate alert threshold.
    pub slow_burn: f64,
    /// Relative-error bound for the latency quantile sketches.
    pub sketch_alpha: f64,
}

impl Default for SloConfig {
    /// 95% deadline-hit objective, 16/64-frame windows, alerts at 4× and
    /// 1.5× burn, 1% sketch accuracy.
    fn default() -> Self {
        SloConfig {
            target: 0.95,
            fast_window: 16,
            slow_window: 64,
            fast_burn: 4.0,
            slow_burn: 1.5,
            sketch_alpha: 0.01,
        }
    }
}

impl SloConfig {
    /// Validates the SLO parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target > 0.0 && self.target < 1.0) {
            return Err("SLO target must be in (0, 1)".into());
        }
        if self.fast_window == 0 || self.slow_window < self.fast_window {
            return Err("SLO windows must satisfy 0 < fast ≤ slow".into());
        }
        if !(self.fast_burn > 0.0 && self.slow_burn > 0.0) {
            return Err("burn-rate thresholds must be positive".into());
        }
        if !(self.sketch_alpha > 0.0 && self.sketch_alpha < 0.5) {
            return Err("sketch accuracy must be in (0, 0.5)".into());
        }
        Ok(())
    }
}

/// One edge-triggered burn-rate alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnEvent {
    /// Frame index at which the window's burn rate crossed its threshold.
    pub frame: u64,
    /// Which window tripped: `"fast"` or `"slow"`.
    pub window: &'static str,
    /// The burn rate at the crossing (window miss rate over `1 − target`).
    pub burn_rate: f64,
    /// Error budget remaining at the crossing (fraction of the whole-run
    /// budget; negative when overdrawn).
    pub budget_remaining: f64,
}

/// Per-session SLO bookkeeping, advanced once per tick via
/// [`observe`](SloTracker::observe).
#[derive(Debug, Clone)]
pub struct SloTracker {
    config: SloConfig,
    fast: SlidingWindow,
    slow: SlidingWindow,
    latency: QuantileSketch,
    frames: u64,
    misses: u64,
    events: Vec<BurnEvent>,
    fast_alerting: bool,
    slow_alerting: bool,
}

impl SloTracker {
    /// An empty tracker.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error message.
    pub fn new(config: SloConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(SloTracker {
            config,
            fast: SlidingWindow::new(config.fast_window),
            slow: SlidingWindow::new(config.slow_window),
            latency: QuantileSketch::new(config.sketch_alpha),
            frames: 0,
            misses: 0,
            events: Vec::new(),
            fast_alerting: false,
            slow_alerting: false,
        })
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Feeds one frame outcome: whether it met the deadline and its
    /// completion latency in seconds. Emits burn-rate alerts (as recorded
    /// [`BurnEvent`]s and `slo.burn.*` telemetry counters) on threshold
    /// crossings.
    pub fn observe(&mut self, frame: u64, hit: bool, latency_s: f64) {
        self.frames += 1;
        if !hit {
            self.misses += 1;
        }
        let miss = if hit { 0.0 } else { 1.0 };
        self.fast.push(frame, miss);
        self.slow.push(frame, miss);
        self.latency.record(latency_s);

        // Edge-triggered multi-window alerts. A window only speaks once it
        // is full — a cold window's miss rate is too noisy to page on.
        let budgeted_miss = 1.0 - self.config.target;
        let fast_burn = self.config.fast_burn;
        let slow_burn = self.config.slow_burn;
        for (window, threshold, alerting, name) in [
            (&self.fast, fast_burn, &mut self.fast_alerting, "fast"),
            (&self.slow, slow_burn, &mut self.slow_alerting, "slow"),
        ] {
            if !window.is_full() {
                continue;
            }
            let burn_rate = window.mean().unwrap_or(0.0) / budgeted_miss;
            if burn_rate > threshold {
                if !*alerting {
                    *alerting = true;
                    let budget_remaining = 1.0
                        - self.misses as f64 / (budgeted_miss * self.frames as f64);
                    self.events.push(BurnEvent {
                        frame,
                        window: name,
                        burn_rate,
                        budget_remaining,
                    });
                    if name == "fast" {
                        holoar_telemetry::counter_add("slo.burn.fast", 1);
                    } else {
                        holoar_telemetry::counter_add("slo.burn.slow", 1);
                    }
                }
            } else {
                *alerting = false;
            }
        }
    }

    /// Frames observed so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Deadline misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Unspent fraction of the error budget: `1 − misses / ((1 − target) ×
    /// frames)`. `1.0` before any frame; negative once overdrawn.
    pub fn error_budget_remaining(&self) -> f64 {
        if self.frames == 0 {
            return 1.0;
        }
        1.0 - self.misses as f64 / ((1.0 - self.config.target) * self.frames as f64)
    }

    /// Every burn-rate alert recorded, in frame order.
    pub fn burn_events(&self) -> &[BurnEvent] {
        &self.events
    }

    /// The completion-latency sketch (seconds) — mergeable across sessions.
    pub fn latency_sketch(&self) -> &QuantileSketch {
        &self.latency
    }
}

/// Per-session SLO summary published in the serving report.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSlo {
    /// Median completion latency, seconds (sketch estimate).
    pub latency_p50: f64,
    /// 90th-percentile completion latency, seconds.
    pub latency_p90: f64,
    /// 99th-percentile completion latency, seconds.
    pub latency_p99: f64,
    /// 99.9th-percentile completion latency, seconds.
    pub latency_p999: f64,
    /// Unspent error-budget fraction (negative when overdrawn).
    pub error_budget_remaining: f64,
    /// Burn-rate alerts, in frame order.
    pub burn_events: Vec<BurnEvent>,
    /// Degradation step-downs (deeper level), each carrying the recorded
    /// SLO signal that triggered it.
    pub step_downs: Vec<Transition>,
    /// Mean degradation-level index over the most recent window.
    pub recent_level: f64,
    /// Total time attributed to each profile stage across the run, heaviest
    /// first.
    pub stages: Vec<StageBreakdown>,
    /// Tick index of the slowest frame.
    pub worst_frame: u64,
    /// The slowest frame's duration, seconds.
    pub worst_frame_latency: f64,
    /// The slowest frame's critical path: `(stage, seconds)` hops from the
    /// frame root down the dominating children.
    pub worst_frame_path: Vec<(String, f64)>,
}

/// One row of a session's stage-time breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Profile stage name (`profile.stage.*`).
    pub stage: String,
    /// Total attributed time across the run, seconds.
    pub total_s: f64,
    /// Fraction of the session's total attributed time.
    pub share: f64,
}

/// Fleet-level SLO summary: merged quantiles and pooled budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSlo {
    /// The deadline-hit objective the run was tracked against.
    pub target: f64,
    /// Sketch relative-error bound for the quantile fields.
    pub sketch_alpha: f64,
    /// Fleet median completion latency, seconds (merged sketch).
    pub latency_p50: f64,
    /// Fleet 90th-percentile completion latency, seconds.
    pub latency_p90: f64,
    /// Fleet 99th-percentile completion latency, seconds.
    pub latency_p99: f64,
    /// Fleet 99.9th-percentile completion latency, seconds.
    pub latency_p999: f64,
    /// Pooled unspent error-budget fraction.
    pub error_budget_remaining: f64,
    /// Fast-window burn alerts across all sessions.
    pub fast_burn_events: u64,
    /// Slow-window burn alerts across all sessions.
    pub slow_burn_events: u64,
    /// Fleet deadline-hit rate over the most recent window of ticks.
    pub recent_hit_rate: f64,
    /// Mean deferred-session count over the most recent window of ticks.
    pub recent_queue_depth: f64,
    /// Mean device occupancy over the most recent window of ticks.
    pub recent_occupancy: f64,
}

/// Nanoseconds for a span duration in seconds (non-negative, rounded).
fn span_ns(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e9).round() as u64
}

/// Appends the synthesized span tree for one frame: a `profile.frame` root
/// whose children are the `(stage, seconds)` components, laid out
/// back-to-back from `tick × budget` so the trace timeline matches the
/// simulated schedule. The root's duration is the exact sum of its
/// children, keeping self-times an exact partition. Ids are derived from
/// the tick, so each session's profile is self-consistent and replayable.
pub fn record_frame_spans(
    profile: &mut Vec<SpanRecord>,
    session: u32,
    tick: u64,
    frame_budget: f64,
    stages: &[(&'static str, f64)],
) {
    let start = tick.saturating_mul(span_ns(frame_budget));
    // Up to 8 spans per tick keeps ids unique and monotone per session.
    let base_id = (tick.saturating_mul(8) + 1).min(u64::from(u32::MAX)) as u32;
    let mut cursor = start;
    let mut total = 0u64;
    let mut children = Vec::with_capacity(stages.len());
    for (offset, &(stage, seconds)) in stages.iter().enumerate() {
        let dur = span_ns(seconds);
        children.push(SpanRecord {
            name: Cow::Borrowed(stage),
            cat: "profile",
            tid: session,
            id: base_id + 1 + offset as u32,
            parent: Some(base_id),
            start_ns: cursor,
            dur_ns: dur,
        });
        cursor += dur;
        total += dur;
    }
    profile.push(SpanRecord {
        name: Cow::Borrowed(PROFILE_FRAME),
        cat: "profile",
        tid: session,
        id: base_id,
        parent: None,
        start_ns: start,
        dur_ns: total,
    });
    profile.extend(children);
}

/// Builds the [`SessionSlo`] summary from a session's tracker, synthesized
/// profile spans, and recorded controller transitions.
pub(crate) fn session_slo(
    tracker: &SloTracker,
    profile: &[SpanRecord],
    transitions: &[Transition],
    level_window: &SlidingWindow,
    frame_budget: f64,
) -> SessionSlo {
    let sketch = tracker.latency_sketch();
    let tree = SpanTreeAnalysis::new(profile);

    // Stage totals: every non-root span is a leaf stage.
    let mut stages: Vec<StageBreakdown> = tree
        .self_time_by_name()
        .into_iter()
        .filter(|row| row.name != PROFILE_FRAME)
        .map(|row| StageBreakdown {
            stage: row.name,
            total_s: row.self_ns as f64 / 1e9,
            share: 0.0,
        })
        .collect();
    let total: f64 = stages.iter().map(|s| s.total_s).sum();
    for s in &mut stages {
        s.share = if total > 0.0 { s.total_s / total } else { 0.0 };
    }

    let worst = tree.worst_root(PROFILE_FRAME);
    let budget_ns = span_ns(frame_budget).max(1);
    let (worst_frame, worst_frame_latency, worst_frame_path) = match worst {
        Some(root) => (
            root.start_ns / budget_ns,
            root.dur_ns as f64 / 1e9,
            tree.critical_path(root.id)
                .into_iter()
                .map(|s| (s.name.to_string(), s.dur_ns as f64 / 1e9))
                .collect(),
        ),
        None => (0, 0.0, Vec::new()),
    };

    SessionSlo {
        latency_p50: sketch.p50().unwrap_or(0.0),
        latency_p90: sketch.p90().unwrap_or(0.0),
        latency_p99: sketch.p99().unwrap_or(0.0),
        latency_p999: sketch.p999().unwrap_or(0.0),
        error_budget_remaining: tracker.error_budget_remaining(),
        burn_events: tracker.burn_events().to_vec(),
        step_downs: transitions
            .iter()
            .filter(|t| t.to.index() > t.from.index())
            .copied()
            .collect(),
        recent_level: level_window.mean().unwrap_or(0.0),
        stages,
        worst_frame,
        worst_frame_latency,
        worst_frame_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> SloTracker {
        SloTracker::new(SloConfig::default()).unwrap()
    }

    #[test]
    fn budget_accounting_matches_the_definition() {
        let mut t = tracker();
        assert_eq!(t.error_budget_remaining(), 1.0);
        // 100 frames at 5% target miss budget: 5 misses spend it exactly.
        for frame in 0..100u64 {
            t.observe(frame, frame % 20 != 0, 0.01);
        }
        assert_eq!(t.misses(), 5);
        assert!(t.error_budget_remaining().abs() < 1e-12);
        // Further misses overdraw it below zero.
        for frame in 100..110u64 {
            t.observe(frame, false, 0.02);
        }
        assert!(t.error_budget_remaining() < 0.0);
    }

    #[test]
    fn burn_alerts_are_edge_triggered_per_window() {
        let mut t = tracker();
        // Warm both windows clean, then a hard outage: every frame misses.
        for frame in 0..64u64 {
            t.observe(frame, true, 0.01);
        }
        for frame in 64..160u64 {
            t.observe(frame, false, 0.03);
        }
        let fast: Vec<&BurnEvent> =
            t.burn_events().iter().filter(|e| e.window == "fast").collect();
        let slow: Vec<&BurnEvent> =
            t.burn_events().iter().filter(|e| e.window == "slow").collect();
        assert_eq!(fast.len(), 1, "sustained outage must page fast exactly once");
        assert_eq!(slow.len(), 1, "sustained outage must page slow exactly once");
        assert!(fast[0].frame < slow[0].frame, "the fast window pages first");
        assert!(fast[0].burn_rate > t.config().fast_burn);
        // Recovery re-arms the alert; a second outage pages again.
        for frame in 160..260u64 {
            t.observe(frame, true, 0.01);
        }
        for frame in 260..300u64 {
            t.observe(frame, false, 0.03);
        }
        let fast_after: usize =
            t.burn_events().iter().filter(|e| e.window == "fast").count();
        assert_eq!(fast_after, 2, "a fresh outage must re-trigger the fast alert");
    }

    #[test]
    fn latency_sketch_tracks_quantiles() {
        let mut t = tracker();
        for frame in 0..1000u64 {
            t.observe(frame, true, (frame + 1) as f64 * 1e-5);
        }
        let p50 = t.latency_sketch().p50().unwrap();
        let p999 = t.latency_sketch().p999().unwrap();
        // Exact nearest-rank p50 of 1e-5 … 1e-2 is 0.005; the sketch is
        // within its 1% relative-error bound of it.
        assert!((p50 - 0.005).abs() <= 0.005 * 0.01 + 1e-9, "p50 {p50}");
        assert!(p999 > p50);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            SloConfig { target: 1.0, ..SloConfig::default() },
            SloConfig { fast_window: 0, ..SloConfig::default() },
            SloConfig { slow_window: 2, fast_window: 8, ..SloConfig::default() },
            SloConfig { fast_burn: 0.0, ..SloConfig::default() },
            SloConfig { sketch_alpha: 0.5, ..SloConfig::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn frame_spans_partition_and_name_the_critical_stage() {
        let mut profile = Vec::new();
        record_frame_spans(
            &mut profile,
            3,
            7,
            0.011,
            &[(STAGE_BATCH, 0.004), (STAGE_QUEUE_WAIT, 0.006), (STAGE_OVERRUN, 0.002)],
        );
        assert_eq!(profile.len(), 4);
        let tree = SpanTreeAnalysis::new(&profile);
        let root = tree.worst_root(PROFILE_FRAME).unwrap();
        assert_eq!(root.dur_ns, 12_000_000);
        let path = tree.critical_path(root.id);
        assert_eq!(path.last().unwrap().name, STAGE_QUEUE_WAIT);
        // Self-times partition the root exactly.
        let rows = tree.self_time_by_name();
        let self_total: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(self_total, root.dur_ns);
    }

    #[test]
    fn session_slo_summarizes_stages_and_worst_frame() {
        let mut t = tracker();
        let mut profile = Vec::new();
        let budget = 0.011;
        for tick in 0..20u64 {
            let batch = if tick == 13 { 0.018 } else { 0.006 };
            let hit = batch <= budget;
            t.observe(tick, hit, batch);
            record_frame_spans(
                &mut profile,
                0,
                tick,
                budget,
                &[(STAGE_BATCH, batch * 0.4), (STAGE_QUEUE_WAIT, batch * 0.6)],
            );
        }
        let window = SlidingWindow::new(8);
        let slo = session_slo(&t, &profile, &[], &window, budget);
        assert_eq!(slo.worst_frame, 13);
        assert!((slo.worst_frame_latency - 0.018).abs() < 1e-9);
        assert_eq!(slo.worst_frame_path.first().unwrap().0, PROFILE_FRAME);
        assert_eq!(slo.worst_frame_path.last().unwrap().0, STAGE_QUEUE_WAIT);
        assert_eq!(slo.stages.len(), 2);
        assert!((slo.stages.iter().map(|s| s.share).sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(slo.latency_p999 >= slo.latency_p50);
        assert!(slo.step_downs.is_empty());
    }
}
