//! Determinism and migration-attribution properties of the fleet layer.
//!
//! The fleet loop is replay-driven and serial by construction, so the
//! properties here are cheap to state but load-bearing: reruns and worker
//! counts must be bit-identical, shuffling how the load schedule is handed
//! over must not move a single placement, and every live migration must
//! surface as a signal-attributed degradation transition plus a telemetry
//! event — no silent session teleports.

use holoar_sensors::rng::Rng;
use holoar_serve::{
    run_fleet, schedule, FleetConfig, FleetReport, SIG_DEVICE_KILL, SIG_DEVICE_OVERLOAD,
};

/// A small-but-busy fleet: 4 devices, 24 offered sessions, 60 ticks.
fn busy_config() -> FleetConfig {
    FleetConfig::sweep(4, 24, 60, 42)
}

/// The same fleet with device 0 scheduled to die mid-run.
fn kill_config() -> FleetConfig {
    let mut cfg = busy_config();
    cfg.kill = Some((0, 30));
    cfg
}

fn run(cfg: &FleetConfig) -> FleetReport {
    run_fleet(cfg).expect("fleet config must validate")
}

#[test]
fn fleet_is_bit_identical_across_reruns_and_worker_counts() {
    let baseline = run(&kill_config());
    let baseline_bytes = format!("{baseline:?}");
    // Rerun identity first, with whatever environment the harness gave us.
    let rerun = run(&kill_config());
    assert_eq!(baseline, rerun);
    assert_eq!(baseline_bytes, format!("{rerun:?}"));
    // The fleet loop is serial; pin that the workspace worker knob cannot
    // leak into it (this is the guard that fires if someone later threads
    // the probe planner through `Parallelism::auto`).
    let prior = std::env::var("HOLOAR_THREADS").ok();
    for workers in ["1", "2", "7"] {
        std::env::set_var("HOLOAR_THREADS", workers);
        let report = run(&kill_config());
        assert_eq!(baseline, report, "fleet diverged under HOLOAR_THREADS={workers}");
        assert_eq!(baseline_bytes, format!("{report:?}"));
    }
    match prior {
        Some(v) => std::env::set_var("HOLOAR_THREADS", v),
        None => std::env::remove_var("HOLOAR_THREADS"),
    }
}

#[test]
fn shuffled_schedule_handoff_cannot_change_placement() {
    // The load schedule is a pure function of (config, frames), sorted by
    // (arrive, id) — so any shuffling of how plans are generated or handed
    // over normalises back to the same replay the fleet consumes.
    let cfg = busy_config();
    let plans = schedule(&cfg.load, cfg.frames).unwrap();
    let mut shuffled = plans.clone();
    let mut rng = Rng::seeded(7);
    for i in (1..shuffled.len()).rev() {
        let j = (rng.uniform() * (i + 1) as f64) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    assert_ne!(plans, shuffled, "shuffle must actually permute the schedule");
    shuffled.sort_by_key(|p| (p.arrive, p.spec.id));
    assert_eq!(plans, shuffled);
    // And the placements built from that replay are themselves stable:
    // per-device admission counts and migration logs match across reruns.
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.per_device, b.per_device);
    assert_eq!(a.migration_events, b.migration_events);
}

#[test]
fn every_migration_is_signal_attributed() {
    let report = run(&kill_config());
    assert!(report.migrations >= 1, "kill scenario must force migrations");
    assert_eq!(report.migrations, report.migration_events.len() as u64);
    assert_eq!(
        report.migrations, report.migration_transitions,
        "each migration must charge a signal-attributed degradation transition"
    );
    assert_eq!(report.migrations, report.kill_migrations + report.overload_migrations);
    for event in &report.migration_events {
        assert_ne!(event.from, event.to, "migration must change devices");
        assert!(event.from < report.devices && event.to < report.devices);
        assert!(event.tick < report.frames);
        assert!(
            event.signal == SIG_DEVICE_KILL || event.signal == SIG_DEVICE_OVERLOAD,
            "unattributed migration signal: {}",
            event.signal
        );
    }
    // Kill-forced migrations leave the dead device and are logged as such.
    let off_dead: Vec<_> =
        report.migration_events.iter().filter(|m| m.signal == SIG_DEVICE_KILL).collect();
    assert_eq!(off_dead.len() as u64, report.kill_migrations);
    assert!(off_dead.iter().all(|m| m.from == 0));
}

#[test]
fn injector_driven_kills_latch_and_force_evacuation() {
    // No scheduled kill — the deaths come from the fault injector's
    // DeviceKill process, latched permanently on first occurrence.
    let mut cfg = busy_config();
    cfg.kill_probability = 0.6;
    let report = run(&cfg);
    assert!(!report.killed.is_empty(), "p=0.6 over 60 ticks must kill something");
    assert_eq!(report, run(&cfg), "injector-driven kills must replay exactly");
    for &(device, tick) in &report.killed {
        assert!(tick < report.frames);
        assert_eq!(report.per_device[device].killed_at, Some(tick));
    }
    // Evacuations happened (or every refugee was orphaned — with 4 devices
    // and p=0.6 per 32-tick window, survivors exist at the first death).
    assert!(report.kill_migrations >= 1, "latched kills must evacuate sessions");
    assert!(report.presented > 0 && report.hit_rate > 0.0);
}
