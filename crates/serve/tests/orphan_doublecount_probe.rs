//! Throwaway review probe: does an orphaned session that previously
//! migrated double-count in `migration_transitions`?

use holoar_serve::{run_fleet, FleetConfig};

#[test]
fn orphaned_after_migration_keeps_books_consistent() {
    // Search seeds for a run where every device eventually dies (injector
    // kills), forcing orphans, with at least one migration beforehand.
    for seed in 0..200u64 {
        let mut cfg = FleetConfig::sweep(2, 12, 96, seed);
        cfg.kill_probability = 0.5;
        let r = run_fleet(&cfg).unwrap();
        if r.orphaned > 0 && r.migrations > 0 {
            assert_eq!(
                r.migrations, r.migration_transitions,
                "seed {seed}: orphaned={} migrations={} transitions={}",
                r.orphaned, r.migrations, r.migration_transitions
            );
        }
    }
}
