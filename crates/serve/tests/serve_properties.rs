//! Serving-layer properties: worker-count determinism, the acceptance
//! targets for cross-session batching, and the degradation invariant under
//! multi-session contention.

use holoar_core::ExecutionContext;
use holoar_serve::{run_serve, DeviceSpec, ServeConfig, SessionSpec, SERVE_FRAME_BUDGET};
use proptest::prelude::*;

/// The acceptance scenario: 8 sessions, shared serving device.
fn eight_sessions() -> ServeConfig {
    ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(8, 42), 40)
}

#[test]
fn serve_report_is_bit_identical_across_worker_counts() {
    let config = ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(4, 42), 24);
    let baseline = run_serve(&config, &ExecutionContext::serial()).expect("fleet config is valid");
    for workers in [1usize, 2, 7] {
        let ctx = ExecutionContext::with_workers(workers);
        let report = run_serve(&config, &ctx).expect("fleet config is valid");
        assert_eq!(baseline, report, "report diverged at {workers} workers");
    }
}

#[test]
fn eight_sessions_meet_the_acceptance_targets() {
    let ctx = ExecutionContext::serial();
    let report = run_serve(&eight_sessions(), &ctx).expect("fleet config is valid");
    assert_eq!(report.admitted, 8, "the serving device must carry 8 light sessions");
    assert!(
        report.speedup_vs_sequential >= 1.8,
        "batched serving must beat 8 sequential pipelines by ≥ 1.8×, got {:.2}×",
        report.speedup_vs_sequential
    );
    assert!(
        report.deadline_hit_rate >= 0.95,
        "deadline-hit rate {:.3} below the 95% target",
        report.deadline_hit_rate
    );
    assert!(
        report.latency_p99 <= SERVE_FRAME_BUDGET * 1.5,
        "p99 latency {:.4}s is out of scale with the {:.4}s budget",
        report.latency_p99,
        SERVE_FRAME_BUDGET
    );
    for session in &report.sessions {
        assert!(
            (session.psnr_weighted - session.psnr_full).abs() <= 0.5,
            "session {} weighted PSNR {:.2} dB strays more than 0.5 dB from its \
             single-session baseline {:.2} dB",
            session.id,
            session.psnr_weighted,
            session.psnr_full
        );
    }
    assert!(report.mean_occupancy > 0.0 && report.mean_occupancy <= 1.0);
    assert!(report.launches_saved > 0, "batching must eliminate per-plane launches");
}

#[test]
fn oversubscription_degrades_incrementally_never_in_lockstep() {
    // 24 sessions oversubscribe the 90 Hz budget, so QoS must engage.
    let config = ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(24, 7), 100);
    let ctx = ExecutionContext::serial();
    let report = run_serve(&config, &ctx).expect("fleet config is valid");
    let qos_total: u64 = report.sessions.iter().map(|s| s.qos_step_downs).sum();
    assert!(qos_total > 0, "an oversubscribed fleet must trigger QoS step-downs");
    // One victim per tick: QoS can never have touched more sessions in one
    // tick than ticks elapsed, and some session must have kept full-quality
    // frames (degradation is incremental, not fleet-wide).
    assert!(qos_total <= config.frames);
    assert!(
        report.sessions.iter().any(|s| s.frames_at_level[0] > 0),
        "lockstep degradation: no session retained any full-quality frame"
    );
    // The ladder invariant holds for every session even under contention.
    for session in &report.sessions {
        assert!(
            session.max_overruns_without_stepdown <= 1,
            "session {} tolerated {} consecutive overruns without shedding",
            session.id,
            session.max_overruns_without_stepdown
        );
    }
}

#[test]
fn full_telemetry_does_not_perturb_the_report() {
    // The SLO/profile bookkeeping is pure data — turning the collector on
    // must not change a single bit of the report, at any worker count.
    let config = ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(4, 42), 24);
    let off = run_serve(&config, &ExecutionContext::serial()).expect("fleet config is valid");
    holoar_telemetry::set_mode(holoar_telemetry::TelemetryMode::Full);
    for workers in [1usize, 2, 7] {
        let ctx = ExecutionContext::with_workers(workers);
        let report = run_serve(&config, &ctx).expect("fleet config is valid");
        if off != report {
            holoar_telemetry::set_mode(holoar_telemetry::TelemetryMode::Off);
            panic!("full telemetry perturbed the report at {workers} workers");
        }
    }
    holoar_telemetry::set_mode(holoar_telemetry::TelemetryMode::Off);
}

#[test]
fn slo_signals_annotate_every_step_down_and_alerts_fire_under_overload() {
    // Same oversubscribed fleet as the incremental-degradation test: misses
    // abound, so the SLO machinery must both page and explain itself.
    let config = ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(24, 7), 100);
    let ctx = ExecutionContext::serial();
    let report = run_serve(&config, &ctx).expect("fleet config is valid");

    // Acceptance: every degradation step-down is attributable to a recorded
    // SLO signal.
    let mut step_downs = 0usize;
    for session in &report.sessions {
        for t in &session.slo.step_downs {
            assert!(
                !t.signal.is_empty(),
                "session {} step-down at frame {} has no recorded signal",
                session.id,
                t.frame
            );
        }
        step_downs += session.slo.step_downs.len();
    }
    assert!(step_downs > 0, "an oversubscribed fleet must record step-downs");
    assert!(
        report
            .sessions
            .iter()
            .flat_map(|s| &s.slo.step_downs)
            .any(|t| t.signal == "qos-batch-overrun"),
        "QoS-forced step-downs must carry the batch-overrun signal"
    );

    // Burn-rate alerts fire and the pooled error budget is overdrawn.
    assert!(
        report.slo.fast_burn_events + report.slo.slow_burn_events > 0,
        "sustained overload must trip at least one burn-rate alert"
    );
    assert!(report.slo.error_budget_remaining < 1.0);
    assert_eq!(
        report.slo.fast_burn_events + report.slo.slow_burn_events,
        report.sessions.iter().map(|s| s.slo.burn_events.len() as u64).sum::<u64>(),
        "fleet burn totals must match the per-session events"
    );

    // Critical-path attribution names a stage for every session's worst
    // frame, and the stage shares partition the attributed time.
    for session in &report.sessions {
        assert!(
            session.slo.worst_frame_path.len() >= 2,
            "session {} worst frame has no critical path",
            session.id
        );
        assert!(!session.slo.stages.is_empty());
        let share_sum: f64 = session.slo.stages.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "stage shares sum to {share_sum}");
        assert!(session.slo.latency_p999 >= session.slo.latency_p50);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any small fleet replays bit-identically and keeps its books
    /// consistent: frames partition into served + deferred, deadline hits
    /// never exceed frames, and level occupancy sums to the tick count.
    #[test]
    fn serving_replays_and_keeps_consistent_books(
        sessions in 1u32..5,
        frames in 4u64..16,
        seed in 0u64..1_000,
    ) {
        let config = ServeConfig::fleet(DeviceSpec::edge(), SessionSpec::fleet(sessions, seed), frames);
        let ctx = ExecutionContext::serial();
        let a = run_serve(&config, &ctx).expect("fleet config is valid");
        let b = run_serve(&config, &ctx).expect("fleet config is valid");
        prop_assert_eq!(&a, &b);
        for s in &a.sessions {
            prop_assert_eq!(s.served + s.deferred, frames);
            prop_assert!(s.deadline_hits <= frames);
            prop_assert_eq!(s.frames_at_level.iter().sum::<u64>(), frames);
        }
    }
}
