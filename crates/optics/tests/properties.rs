//! Property tests for the wave-optics engine: physical invariants that must
//! hold for arbitrary fields, depthmaps and distances.

use holoar_fft::{Complex64, ExecutionContext, Parallelism};
use holoar_optics::{
    algorithm1, phase, subhologram, DepthMap, Field, FresnelPropagator, OpticalConfig,
    PhaseEncoding, Propagator, Region,
};
use proptest::prelude::*;

fn arb_smooth_field() -> impl Strategy<Value = Field> {
    // Gaussian blobs of varying width/position: band-limited content that
    // stays inside the propagating band.
    (4.0f64..60.0, -6.0f64..6.0, -6.0f64..6.0).prop_map(|(sigma2, ox, oy)| {
        let n = 32;
        let cfg = OpticalConfig::default();
        let mut f = Field::zeros(n, n, cfg);
        for r in 0..n {
            for c in 0..n {
                let dr = r as f64 - n as f64 / 2.0 - oy;
                let dc = c as f64 - n as f64 / 2.0 - ox;
                f.set(r, c, Complex64::new((-(dr * dr + dc * dc) / sigma2).exp(), 0.0));
            }
        }
        f
    })
}

fn arb_depthmap() -> impl Strategy<Value = DepthMap> {
    prop::collection::vec((0.0f64..1.0, 0.004f64..0.01), 16 * 16).prop_map(|cells| {
        let amp: Vec<f64> =
            cells.iter().map(|&(a, _)| if a > 0.6 { a } else { 0.0 }).collect();
        let depth: Vec<f64> = cells.iter().map(|&(_, d)| d).collect();
        DepthMap::new(16, 16, amp, depth).expect("generated buffers are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Angular-spectrum propagation approximately conserves energy for
    /// band-limited fields, at any modest distance.
    #[test]
    fn asm_conserves_energy(field in arb_smooth_field(), z_um in 100.0f64..4000.0) {
        let z = z_um * 1e-6;
        let e0 = field.total_energy();
        prop_assume!(e0 > 1e-6);
        let out = Propagator::new().propagate(&field, z);
        let e1 = out.total_energy();
        prop_assert!((e0 - e1).abs() / e0 < 0.05, "energy {e0} -> {e1} at z={z}");
    }

    /// Fresnel propagation is exactly unitary for any field and distance.
    #[test]
    fn fresnel_is_unitary(field in arb_smooth_field(), z_um in -4000.0f64..4000.0) {
        let z = z_um * 1e-6;
        let e0 = field.total_energy();
        let out = FresnelPropagator::new().propagate(&field, z);
        prop_assert!((out.total_energy() - e0).abs() <= 1e-9 * e0.max(1.0));
    }

    /// Forward-then-backward propagation recovers the field (reciprocity).
    #[test]
    fn propagation_reciprocity(field in arb_smooth_field(), z_um in 100.0f64..3000.0) {
        let z = z_um * 1e-6;
        let mut prop = Propagator::new();
        let fwd = prop.propagate(&field, z);
        let back = prop.propagate(&fwd, -z);
        let err: f64 = back
            .samples()
            .iter()
            .zip(field.samples())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum();
        prop_assert!(err / field.total_energy().max(1e-9) < 0.02);
    }

    /// Depthmap slicing conserves lit pixels and energy for any map and any
    /// plane count, and never moves a pixel outside the depth range.
    #[test]
    fn slicing_conserves_content(dm in arb_depthmap(), planes in 1usize..24) {
        let stack = dm.slice(planes, OpticalConfig::default());
        prop_assert_eq!(stack.len(), planes);
        prop_assert_eq!(stack.lit_pixel_count(), dm.lit_pixel_count());
        let stack_energy: f64 = stack.iter().map(|p| p.field.total_energy()).sum();
        let map_energy: f64 = dm.amplitude().iter().map(|a| a * a).sum();
        prop_assert!((stack_energy - map_energy).abs() < 1e-9 * map_energy.max(1.0));
        if let Some((near, far)) = dm.depth_range() {
            for plane in stack.iter() {
                prop_assert!(plane.z >= near - 1e-12 && plane.z <= far + 1e-12);
            }
        }
    }

    /// Algorithm 1's instrumentation is exact: propagation counts equal the
    /// plane count per step, sync counts follow the algorithm structure.
    #[test]
    fn algorithm1_instrumentation(dm in arb_depthmap(), planes in 1usize..12) {
        let result = algorithm1::depthmap_hologram(
            &dm,
            planes,
            OpticalConfig::default(),
            &ExecutionContext::serial(),
        );
        prop_assert_eq!(result.stats.plane_count, planes);
        prop_assert_eq!(result.stats.forward_propagations, planes);
        prop_assert_eq!(result.stats.backward_propagations, planes);
        prop_assert_eq!(result.stats.intra_block_syncs, 2 * planes);
        prop_assert_eq!(result.stats.inter_block_syncs, 2);
        prop_assert_eq!(result.stats.pixels_per_plane, 256);
    }

    /// Phase quantization error is bounded by half a step for any field.
    #[test]
    fn quantization_error_is_bounded(field in arb_smooth_field(), bits in 1u32..10) {
        let shifted = {
            // Give the field non-trivial phases.
            let mut f = field.clone();
            for (i, s) in f.samples_mut().iter_mut().enumerate() {
                *s *= Complex64::cis(i as f64 * 0.13);
            }
            f
        };
        let q = phase::quantize_phase(&shifted, bits);
        let step = 2.0 * std::f64::consts::PI / (1u64 << bits) as f64;
        for (a, b) in shifted.samples().iter().zip(q.samples()) {
            if a.norm() > 1e-9 {
                let mut d = (a.arg() - b.arg()).abs();
                if d > std::f64::consts::PI {
                    d = 2.0 * std::f64::consts::PI - d;
                }
                prop_assert!(d <= step / 2.0 + 1e-9);
            }
        }
    }

    /// Phase-only encodings always emit unit-amplitude (or dark) samples.
    #[test]
    fn encodings_are_phase_only(field in arb_smooth_field(), use_double in any::<bool>()) {
        let encoding =
            if use_double { PhaseEncoding::DoublePhase } else { PhaseEncoding::PhaseExtraction };
        let encoded = phase::encode_phase_only(&field, encoding);
        for s in encoded.samples() {
            let r = s.norm();
            prop_assert!(r == 0.0 || (r - 1.0).abs() < 1e-9);
        }
    }

    /// Region coverage is always in [0, 1] and monotone under containment.
    #[test]
    fn region_coverage_bounds(
        row in 0usize..40, col in 0usize..40,
        rows in 1usize..30, cols in 1usize..30,
    ) {
        let window = Region::new(5, 5, 20, 20);
        let obj = Region::new(row, col, rows, cols);
        let cov = window.coverage_of(&obj);
        prop_assert!((0.0..=1.0).contains(&cov));
        // A bigger window covers at least as much.
        let bigger = Region::new(0, 0, 40, 40);
        prop_assert!(bigger.coverage_of(&obj) >= cov);
    }

    /// Clipping to a region never increases energy, and full-region clipping
    /// is the identity.
    #[test]
    fn clipping_energy(field in arb_smooth_field(), row in 0usize..16, size in 1usize..32) {
        let clipped = subhologram::clip_to_region(&field, Region::new(row, row, size, size));
        prop_assert!(clipped.total_energy() <= field.total_energy() + 1e-12);
        let full = subhologram::clip_to_region(&field, Region::full(32, 32));
        prop_assert_eq!(full.total_energy(), field.total_energy());
    }
}

// ---------------------------------------------------------------------------
// Parallel propagation: batch fan-out and intra-FFT parallelism must be
// invisible in the numbers — bit-identical to the serial path for every
// worker count, shape (Bluestein sizes included) and distance.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `propagate_batch` matches the serial `propagate` loop bit-for-bit.
    #[test]
    fn propagate_batch_is_bit_identical(
        field in arb_smooth_field(),
        zs_um in prop::collection::vec(-4000.0f64..4000.0, 1..=6),
        workers in prop::sample::select(vec![1usize, 2, 7]),
    ) {
        let zs: Vec<f64> = zs_um.iter().map(|&um| um * 1e-6).collect();
        let serial: Vec<Field> = {
            let mut p = Propagator::new();
            zs.iter().map(|&z| p.propagate(&field, z)).collect()
        };
        let mut p = Propagator::with_parallelism(Parallelism::new(workers));
        let batch = p.propagate_batch(&field, &zs);
        prop_assert_eq!(batch.len(), serial.len());
        for (a, b) in batch.iter().zip(&serial) {
            prop_assert_eq!(a.samples(), b.samples());
        }
    }

    /// Intra-FFT parallelism inside a single propagation is bit-identical
    /// for arbitrary (non-power-of-two included) shapes.
    #[test]
    fn parallel_propagation_any_shape_is_bit_identical(
        rows in 3usize..20,
        cols in 3usize..20,
        z_um in -3000.0f64..3000.0,
        workers in prop::sample::select(vec![2usize, 7]),
    ) {
        let cfg = OpticalConfig::default();
        let mut f = Field::zeros(rows, cols, cfg);
        for r in 0..rows {
            for c in 0..cols {
                let i = (r * cols + c) as f64;
                f.set(r, c, Complex64::new((i * 0.31).sin(), ((r + c) as f64 * 0.17).cos()));
            }
        }
        let z = z_um * 1e-6;
        let want = Propagator::new().propagate(&f, z);
        let got =
            Propagator::with_parallelism(Parallelism::new(workers)).propagate(&f, z);
        prop_assert_eq!(got.samples(), want.samples());
    }
}

// ---------------------------------------------------------------------------
// Precision policy: the f32 compute path is a throughput choice, not a
// physics change — on Objectron-statistics scenes (16×16 maps, depths in
// the 4–10 mm band the dataset slices to) its output must stay within
// tolerance of the f64 reference.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// f32 propagation tracks the f64 reference sample-by-sample.
    #[test]
    fn f32_propagation_within_tolerance(field in arb_smooth_field(), z_um in 100.0f64..3000.0) {
        use holoar_fft::Precision;
        let z = z_um * 1e-6;
        prop_assume!(field.total_energy() > 1e-6);
        let wide = Propagator::new().propagate(&field, z);
        let narrow = Propagator::new().with_precision(Precision::F32).propagate(&field, z);
        let scale = field.total_energy().sqrt();
        for (a, b) in wide.samples().iter().zip(narrow.samples()) {
            prop_assert!((*a - *b).norm() < 1e-3 * scale, "{a} vs {b}");
        }
    }

    /// An f32 GSW run reconstructs the same scene as the f64 reference:
    /// summary metrics agree and the per-plane reconstructions (driven by
    /// the f64 reference propagator) match within a small relative error.
    #[test]
    fn gsw_f32_matches_f64_within_tolerance(dm in arb_depthmap(), planes in 1usize..4) {
        use holoar_fft::Precision;
        use holoar_optics::{gsw, GswConfig};
        prop_assume!(dm.lit_pixel_count() > 0);
        let cfg = OpticalConfig::default();
        let gsw_cfg = GswConfig { iterations: 2, adaptivity: 1.0 };
        let stack = dm.slice(planes, cfg);
        let wide = gsw::run(&stack, cfg, gsw_cfg, &ExecutionContext::serial());
        let narrow_ctx = ExecutionContext::builder().precision(Precision::F32).build();
        let narrow = gsw::run(&stack, cfg, gsw_cfg, &narrow_ctx);
        prop_assert!(
            (wide.uniformity - narrow.uniformity).abs() < 0.05,
            "uniformity {} vs {}", wide.uniformity, narrow.uniformity
        );
        prop_assert!(
            (wide.efficiency - narrow.efficiency).abs() < 0.05,
            "efficiency {} vs {}", wide.efficiency, narrow.efficiency
        );
        let mut reference = Propagator::new();
        for plane in stack.iter() {
            let a = reference.propagate(&wide.hologram, plane.z);
            let b = reference.propagate(&narrow.hologram, plane.z);
            let err: f64 = a
                .intensity()
                .iter()
                .zip(b.intensity())
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let norm: f64 = a.intensity().iter().map(|x| x * x).sum::<f64>().max(1e-12);
            prop_assert!(err / norm < 0.05, "relative intensity error {}", err / norm);
        }
    }
}

// ---------------------------------------------------------------------------
// Telemetry is observation only: enabling `full` tracing must not change a
// single bit of the optical output, serial or parallel.
// ---------------------------------------------------------------------------

#[test]
fn full_telemetry_does_not_change_gsw_output() {
    use holoar_optics::{gsw, GswConfig};

    let n = 32;
    let mut amp = vec![0.0; n * n];
    let mut depth = vec![0.01; n * n];
    for &(r, c, z) in &[(8usize, 8usize, 0.01f64), (24, 24, 0.02), (16, 8, 0.03)] {
        amp[r * n + c] = 1.0;
        depth[r * n + c] = z;
    }
    let dm = DepthMap::new(n, n, amp, depth).unwrap();
    let cfg = OpticalConfig::default();
    let gsw_cfg = GswConfig { iterations: 3, adaptivity: 1.0 };
    let quiet = gsw::run(&dm.slice(3, cfg), cfg, gsw_cfg, &ExecutionContext::serial());

    let previous = holoar_telemetry::mode();
    holoar_telemetry::set_mode(holoar_telemetry::TelemetryMode::Full);
    let traced_serial = gsw::run(&dm.slice(3, cfg), cfg, gsw_cfg, &ExecutionContext::serial());
    let traced_results: Vec<_> = [1usize, 2, 7]
        .iter()
        .map(|&w| gsw::run(&dm.slice(3, cfg), cfg, gsw_cfg, &ExecutionContext::with_workers(w)))
        .collect();
    holoar_telemetry::set_mode(previous);

    assert_eq!(traced_serial.hologram.samples(), quiet.hologram.samples());
    assert_eq!(traced_serial.uniformity.to_bits(), quiet.uniformity.to_bits());
    for (w, traced) in [1usize, 2, 7].iter().zip(&traced_results) {
        assert_eq!(traced.hologram.samples(), quiet.hologram.samples(), "workers {w}");
        assert_eq!(traced.efficiency.to_bits(), quiet.efficiency.to_bits(), "workers {w}");
    }
}
