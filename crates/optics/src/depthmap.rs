//! Depthmap inputs and their slicing into discrete depth planes.
//!
//! The paper's hologram pipeline uses the *depthmap input method*
//! (§2.2.1 footnote 2): an RGB-D style image carrying an amplitude and a
//! per-pixel depth. [`DepthMap::slice`] quantizes the continuous depth range
//! into `M` planes — the `M` of Algorithm 1 — assigning each pixel to its
//! nearest plane. Varying `M` is exactly the approximation knob the HoloAR
//! schemes turn.

use crate::field::{Field, OpticalConfig};
use holoar_fft::Complex64;

/// An amplitude + depth image, the input to the depthmap hologram algorithm.
///
/// Depth values are metric distances from the hologram plane (positive,
/// meters). Pixels with zero amplitude are treated as empty background and
/// never contribute to any plane.
///
/// # Examples
///
/// ```
/// use holoar_optics::DepthMap;
///
/// let dm = DepthMap::new(2, 2, vec![1.0, 0.0, 0.5, 0.0], vec![0.1, 0.1, 0.2, 0.2]).unwrap();
/// let (near, far) = dm.depth_range().unwrap();
/// assert_eq!((near, far), (0.1, 0.2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DepthMap {
    rows: usize,
    cols: usize,
    amplitude: Vec<f64>,
    depth: Vec<f64>,
}

/// Error building a [`DepthMap`] from raw buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildDepthMapError {
    /// A dimension was zero.
    EmptyDimensions,
    /// Buffer lengths disagreed with `rows × cols`.
    LengthMismatch {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Actual amplitude buffer length.
        amplitude: usize,
        /// Actual depth buffer length.
        depth: usize,
    },
    /// An amplitude was negative or non-finite, or a depth was non-positive
    /// or non-finite on a lit pixel.
    InvalidSample {
        /// Linear index of the offending sample.
        index: usize,
    },
}

impl std::fmt::Display for BuildDepthMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildDepthMapError::EmptyDimensions => write!(f, "depthmap dimensions must be non-zero"),
            BuildDepthMapError::LengthMismatch { expected, amplitude, depth } => write!(
                f,
                "buffer lengths {amplitude} (amplitude) / {depth} (depth) do not match rows*cols = {expected}"
            ),
            BuildDepthMapError::InvalidSample { index } => {
                write!(f, "invalid amplitude or depth at linear index {index}")
            }
        }
    }
}

impl std::error::Error for BuildDepthMapError {}

impl DepthMap {
    /// Builds a depthmap from row-major amplitude and depth buffers.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDepthMapError`] if dimensions are zero, the buffers do
    /// not match `rows × cols`, an amplitude is negative/non-finite, or a lit
    /// pixel carries a non-positive or non-finite depth.
    pub fn new(
        rows: usize,
        cols: usize,
        amplitude: Vec<f64>,
        depth: Vec<f64>,
    ) -> Result<Self, BuildDepthMapError> {
        if rows == 0 || cols == 0 {
            return Err(BuildDepthMapError::EmptyDimensions);
        }
        let expected = rows * cols;
        if amplitude.len() != expected || depth.len() != expected {
            return Err(BuildDepthMapError::LengthMismatch {
                expected,
                amplitude: amplitude.len(),
                depth: depth.len(),
            });
        }
        for (i, (&a, &d)) in amplitude.iter().zip(&depth).enumerate() {
            if !(a.is_finite() && a >= 0.0) {
                return Err(BuildDepthMapError::InvalidSample { index: i });
            }
            if a > 0.0 && !(d.is_finite() && d > 0.0) {
                return Err(BuildDepthMapError::InvalidSample { index: i });
            }
        }
        Ok(DepthMap { rows, cols, amplitude, depth })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The row-major amplitude buffer.
    pub fn amplitude(&self) -> &[f64] {
        &self.amplitude
    }

    /// The row-major depth buffer (meters from the hologram plane).
    pub fn depth(&self) -> &[f64] {
        &self.depth
    }

    /// Number of lit (non-zero-amplitude) pixels.
    pub fn lit_pixel_count(&self) -> usize {
        self.amplitude.iter().filter(|&&a| a > 0.0).count()
    }

    /// The `(nearest, farthest)` depth across lit pixels, or `None` when the
    /// depthmap is entirely background.
    ///
    /// The paper's Fig 3a calls `farthest − nearest` the object *size*
    /// (`ObjSize = farmost − nearest`).
    pub fn depth_range(&self) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for (&a, &d) in self.amplitude.iter().zip(&self.depth) {
            if a > 0.0 {
                range = Some(match range {
                    None => (d, d),
                    Some((lo, hi)) => (lo.min(d), hi.max(d)),
                });
            }
        }
        range
    }

    /// Slices the depthmap into `plane_count` equally spaced depth planes, the
    /// input format of Algorithm 1 (Fig 4a: "the depthmap input is first
    /// sliced into several planes").
    ///
    /// Each lit pixel is assigned to the plane nearest its depth. Planes are
    /// returned nearest-first. An all-background depthmap yields planes with
    /// no lit pixels, positioned across `[1 cm, 1 cm]`.
    ///
    /// # Panics
    ///
    /// Panics if `plane_count == 0`.
    pub fn slice(&self, plane_count: usize, config: OpticalConfig) -> PlaneStack {
        assert!(plane_count > 0, "cannot slice into zero depth planes");
        let (near, far) = self.depth_range().unwrap_or((0.01, 0.01));
        let mut planes: Vec<DepthPlane> = (0..plane_count)
            .map(|i| {
                let z = if plane_count == 1 {
                    (near + far) / 2.0
                } else {
                    near + (far - near) * i as f64 / (plane_count - 1) as f64
                };
                DepthPlane {
                    z,
                    field: Field::zeros(self.rows, self.cols, config),
                    lit_pixels: 0,
                }
            })
            .collect();
        let span = (far - near).max(f64::MIN_POSITIVE);
        for idx in 0..self.amplitude.len() {
            let a = self.amplitude[idx];
            if a <= 0.0 {
                continue;
            }
            let t = ((self.depth[idx] - near) / span).clamp(0.0, 1.0);
            let p = if plane_count == 1 {
                0
            } else {
                (t * (plane_count - 1) as f64).round() as usize
            };
            let (r, c) = (idx / self.cols, idx % self.cols);
            planes[p].field.set(r, c, Complex64::new(a, 0.0));
            planes[p].lit_pixels += 1;
        }
        PlaneStack { planes }
    }
}

/// One depth plane of a sliced depthmap: the lit samples living at distance
/// `z` from the hologram plane.
#[derive(Debug, Clone)]
pub struct DepthPlane {
    /// Distance from the hologram plane, meters.
    pub z: f64,
    /// The complex field on this plane (amplitude from the depthmap, zero
    /// phase before processing).
    pub field: Field,
    /// Number of lit pixels assigned to this plane.
    pub lit_pixels: usize,
}

/// An ordered (nearest-first) stack of depth planes — `DP[1..M]` in
/// Algorithm 1.
#[derive(Debug, Clone)]
pub struct PlaneStack {
    planes: Vec<DepthPlane>,
}

impl PlaneStack {
    /// Number of planes `M`.
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// Whether the stack has no planes.
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// Iterates over planes nearest-first.
    pub fn iter(&self) -> std::slice::Iter<'_, DepthPlane> {
        self.planes.iter()
    }

    /// The plane at `index` (0 = nearest).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn plane(&self, index: usize) -> &DepthPlane {
        &self.planes[index]
    }

    /// Borrow all planes.
    pub fn planes(&self) -> &[DepthPlane] {
        &self.planes
    }

    /// Consumes the stack, returning the planes.
    pub fn into_planes(self) -> Vec<DepthPlane> {
        self.planes
    }

    /// Keeps only planes whose index lies in `[first, last]` (inclusive,
    /// 0-based) — the *sub-hologram* plane subset of Fig 9c (S-CGH).
    ///
    /// # Panics
    ///
    /// Panics if `first > last` or `last >= len()`.
    pub fn subset(&self, first: usize, last: usize) -> PlaneStack {
        assert!(first <= last && last < self.planes.len(), "invalid plane subset range");
        PlaneStack { planes: self.planes[first..=last].to_vec() }
    }

    /// Total lit pixels across planes.
    pub fn lit_pixel_count(&self) -> usize {
        self.planes.iter().map(|p| p.lit_pixels).sum()
    }
}

impl<'a> IntoIterator for &'a PlaneStack {
    type Item = &'a DepthPlane;
    type IntoIter = std::slice::Iter<'a, DepthPlane>;
    fn into_iter(self) -> Self::IntoIter {
        self.planes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_map() -> DepthMap {
        // 2x2: two lit pixels at depths 0.1 and 0.3, two background.
        DepthMap::new(2, 2, vec![1.0, 0.0, 2.0, 0.0], vec![0.1, 9.9, 0.3, 9.9]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            DepthMap::new(0, 2, vec![], vec![]),
            Err(BuildDepthMapError::EmptyDimensions)
        );
        assert!(matches!(
            DepthMap::new(1, 2, vec![1.0], vec![0.1, 0.2]),
            Err(BuildDepthMapError::LengthMismatch { .. })
        ));
        assert_eq!(
            DepthMap::new(1, 1, vec![-1.0], vec![0.1]),
            Err(BuildDepthMapError::InvalidSample { index: 0 })
        );
        // Zero depth on a lit pixel is invalid…
        assert_eq!(
            DepthMap::new(1, 1, vec![1.0], vec![0.0]),
            Err(BuildDepthMapError::InvalidSample { index: 0 })
        );
        // …but anything goes on background pixels.
        assert!(DepthMap::new(1, 1, vec![0.0], vec![-5.0]).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let err = DepthMap::new(1, 2, vec![1.0], vec![0.1, 0.2]).unwrap_err();
        assert!(err.to_string().contains("rows*cols"));
    }

    #[test]
    fn depth_range_ignores_background() {
        let dm = simple_map();
        assert_eq!(dm.depth_range(), Some((0.1, 0.3)));
        assert_eq!(dm.lit_pixel_count(), 2);
    }

    #[test]
    fn all_background_has_no_range() {
        let dm = DepthMap::new(1, 2, vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert_eq!(dm.depth_range(), None);
        let stack = dm.slice(4, OpticalConfig::default());
        assert_eq!(stack.len(), 4);
        assert_eq!(stack.lit_pixel_count(), 0);
    }

    #[test]
    fn slice_assigns_pixels_to_nearest_plane() {
        let dm = simple_map();
        let stack = dm.slice(3, OpticalConfig::default());
        assert_eq!(stack.len(), 3);
        // Planes at z = 0.1, 0.2, 0.3
        assert!((stack.plane(0).z - 0.1).abs() < 1e-12);
        assert!((stack.plane(2).z - 0.3).abs() < 1e-12);
        assert_eq!(stack.plane(0).lit_pixels, 1);
        assert_eq!(stack.plane(1).lit_pixels, 0);
        assert_eq!(stack.plane(2).lit_pixels, 1);
        assert_eq!(stack.lit_pixel_count(), dm.lit_pixel_count());
    }

    #[test]
    fn slice_single_plane_collapses_everything() {
        let dm = simple_map();
        let stack = dm.slice(1, OpticalConfig::default());
        assert_eq!(stack.len(), 1);
        assert_eq!(stack.plane(0).lit_pixels, 2);
        assert!((stack.plane(0).z - 0.2).abs() < 1e-12); // midpoint
    }

    #[test]
    fn slice_preserves_amplitude() {
        let dm = simple_map();
        let stack = dm.slice(2, OpticalConfig::default());
        let total: f64 = stack.iter().map(|p| p.field.total_energy()).sum();
        assert!((total - (1.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn plane_order_is_nearest_first() {
        let dm = simple_map();
        let stack = dm.slice(5, OpticalConfig::default());
        for w in stack.planes().windows(2) {
            assert!(w[0].z <= w[1].z);
        }
    }

    #[test]
    fn subset_selects_plane_range() {
        let dm = simple_map();
        let stack = dm.slice(4, OpticalConfig::default());
        let sub = stack.subset(1, 2);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.plane(0).z, stack.plane(1).z);
    }

    #[test]
    #[should_panic(expected = "invalid plane subset")]
    fn subset_rejects_bad_range() {
        simple_map().slice(3, OpticalConfig::default()).subset(2, 3);
    }

    #[test]
    #[should_panic(expected = "zero depth planes")]
    fn slice_zero_planes_panics() {
        simple_map().slice(0, OpticalConfig::default());
    }
}
