//! Adaptive weighted Gerchberg–Saxton (GSW) for phase-only holograms.
//!
//! The paper's hologram task runs "five iterations of the GSW algorithm"
//! (§2.2.1 footnote 3, refs \[49, 63\]): an iterative phase-retrieval loop
//! that finds a phase-only hologram whose reconstruction matches target
//! amplitudes on the depth planes, with per-target weights adapted each
//! iteration to equalize achieved intensities (artifact suppression per Wu
//! et al. \[63\]).
//!
//! Each iteration performs one `DP2HP` per plane (accumulate), a phase-only
//! projection at the hologram plane, and one `HP2DP` per plane (measure) —
//! the same kernel structure Algorithm 1 exhibits, which is why the GPU
//! model charges GSW as `iterations × (forward + backward)` plane sweeps.

use crate::depthmap::PlaneStack;
use crate::field::{Field, OpticalConfig};
use crate::propagate::Propagator;
use holoar_fft::{Complex64, ExecutionContext};

/// Configuration for the GSW loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GswConfig {
    /// Number of iterations. The paper profiles five.
    pub iterations: usize,
    /// Exponent on the weight update; `1.0` is standard GSW.
    pub adaptivity: f64,
}

impl Default for GswConfig {
    fn default() -> Self {
        GswConfig { iterations: 5, adaptivity: 1.0 }
    }
}

/// The result of a GSW run.
#[derive(Debug, Clone)]
pub struct GswResult {
    /// The phase-only hologram.
    pub hologram: Field,
    /// Uniformity of achieved target intensities after the final iteration,
    /// `1 − (max − min)/(max + min)` over lit pixels; `1.0` is perfect.
    pub uniformity: f64,
    /// Fraction of reconstructed energy landing on target pixels.
    pub efficiency: f64,
    /// Per-iteration uniformity trace (length = iterations).
    pub uniformity_trace: Vec<f64>,
}

/// Runs adaptive weighted Gerchberg–Saxton over a plane stack.
///
/// Per-plane field construction and both propagation sweeps fan out over the
/// context's worker pool; every floating-point reduction (hologram
/// accumulation, energy totals, weight statistics) stays serial in plane
/// order, so the result is bit-identical for every worker count.
///
/// # Examples
///
/// ```
/// use holoar_fft::ExecutionContext;
/// use holoar_optics::{gsw, DepthMap, GswConfig, OpticalConfig};
///
/// let mut amp = vec![0.0; 64 * 64];
/// amp[64 * 20 + 20] = 1.0;
/// amp[64 * 44 + 44] = 1.0;
/// let dm = DepthMap::new(64, 64, amp, vec![0.01; 64 * 64])?;
/// let cfg = OpticalConfig::default();
/// let ctx = ExecutionContext::serial();
/// let result = gsw::run(&dm.slice(2, cfg), cfg, GswConfig::default(), &ctx);
/// assert!(result.uniformity > 0.5);
/// # Ok::<(), holoar_optics::BuildDepthMapError>(())
/// ```
///
/// # Panics
///
/// Panics if the stack is empty or `config.iterations == 0`.
pub fn run(
    stack: &PlaneStack,
    optics: OpticalConfig,
    config: GswConfig,
    ctx: &ExecutionContext,
) -> GswResult {
    let _span = holoar_telemetry::span_cat("optics.gsw.run", "optics");
    let mut results = run_batch(&[stack], optics, config, ctx);
    assert_eq!(results.len(), 1, "run_batch returns one result per stack");
    results.swap_remove(0)
}

/// Per-stack mutable state for the lockstep batched GSW loop.
struct StackState {
    rows: usize,
    cols: usize,
    zs: Vec<f64>,
    targets: Vec<Vec<f64>>,
    weights: Vec<Vec<f64>>,
    phases: Vec<Vec<f64>>,
    hologram: Field,
    uniformity_trace: Vec<f64>,
    final_uniformity: f64,
    final_efficiency: f64,
}

/// Runs GSW over several plane stacks in lockstep, coalescing every stack's
/// per-iteration propagation sweeps into shared batch calls.
///
/// This is the cross-session batching primitive: when N sessions each need a
/// hologram for the same frame tick, one `run_batch` call propagates all
/// their depth planes together (amortizing FFT plans, transfer functions and
/// fan-out overhead) instead of running N separate loops. Stacks may differ
/// in shape and plane count.
///
/// Each stack's arithmetic is fully independent — field construction, the
/// per-plane propagations and the serial per-stack reductions are exactly
/// those of [`run`] — so `run_batch(&[a, b], …)` is bit-identical to
/// `[run(a, …), run(b, …)]` for every worker count.
///
/// # Panics
///
/// Panics if the batch or any stack is empty, or `config.iterations == 0`.
pub fn run_batch(
    stacks: &[&PlaneStack],
    optics: OpticalConfig,
    config: GswConfig,
    ctx: &ExecutionContext,
) -> Vec<GswResult> {
    assert!(!stacks.is_empty(), "GSW batch requires at least one stack");
    for stack in stacks {
        assert!(!stack.is_empty(), "GSW requires at least one depth plane");
    }
    assert!(config.iterations > 0, "GSW requires at least one iteration");
    let _span = holoar_telemetry::span_cat("optics.gsw.run_batch", "optics");
    let total_planes: usize = stacks.iter().map(|s| s.len()).sum();
    holoar_telemetry::gauge_set("optics.gsw.planes", total_planes as f64);
    if ctx.precision() == holoar_fft::Precision::F32 {
        holoar_telemetry::counter_add("optics.gsw.precision_f32", 1);
    }
    let par = ctx.parallelism().clone();
    let mut prop = Propagator::with_context(ctx);

    let mut states: Vec<StackState> = stacks
        .iter()
        .map(|stack| {
            let rows = stack.plane(0).field.rows();
            let cols = stack.plane(0).field.cols();
            // Target amplitudes and lit-pixel masks per plane.
            let targets: Vec<Vec<f64>> =
                stack.iter().map(|p| p.field.amplitude()).collect();
            let weights: Vec<Vec<f64>> = targets
                .iter()
                .map(|t| t.iter().map(|&a| if a > 0.0 { 1.0 } else { 0.0 }).collect())
                .collect();
            StackState {
                rows,
                cols,
                zs: stack.iter().map(|p| p.z).collect(),
                targets,
                weights,
                // Per-plane phase estimates, initialized flat.
                phases: vec![vec![0.0; rows * cols]; stack.len()],
                hologram: Field::zeros(rows, cols, optics),
                uniformity_trace: Vec::with_capacity(config.iterations),
                final_uniformity: 0.0,
                final_efficiency: 0.0,
            }
        })
        .collect();

    // Flattened (stack, plane) job list, stack-major so each stack's results
    // stay contiguous and in plane order.
    let jobs: Vec<(usize, usize)> = states
        .iter()
        .enumerate()
        .flat_map(|(s, st)| (0..st.zs.len()).map(move |p| (s, p)))
        .collect();

    // Forward-propagation distances never change across iterations.
    let fwd_zs: Vec<f64> = jobs.iter().map(|&(s, p)| states[s].zs[p]).collect();
    // Per-iteration buffers, allocated once and reused: backward
    // accumulators, forward input fields, and the per-plane
    // relative-amplitude scratch for the weight update.
    let mut accs: Vec<Field> = states
        .iter()
        .map(|st| Field::zeros(st.rows, st.cols, optics))
        .collect();
    let mut fwd_fields: Vec<Field> = jobs
        .iter()
        .map(|&(s, _)| Field::zeros(states[s].rows, states[s].cols, optics))
        .collect();
    let max_pixels = states.iter().map(|st| st.rows * st.cols).max().unwrap_or(0);
    let mut rels: Vec<(usize, f64)> = Vec::with_capacity(max_pixels);

    for _ in 0..config.iterations {
        let _iter_span = holoar_telemetry::span_cat("optics.gsw.iteration", "optics");
        // Backward: superpose weighted targets on each hologram plane. The
        // per-plane fields only read targets/weights/phases, so construction
        // fans out across every stack's planes at once; dark planes are
        // skipped exactly like the serial loop.
        let fields: Vec<Field> = par.map(&jobs, |&(s, p)| {
            let st = &states[s];
            let mut f = Field::zeros(st.rows, st.cols, optics);
            for idx in 0..st.rows * st.cols {
                let a = st.targets[p][idx] * st.weights[p][idx];
                if a > 0.0 {
                    f.samples_mut()[idx] = Complex64::from_polar(a, st.phases[p][idx]);
                }
            }
            f
        });
        let mut lit_fields: Vec<Field> = Vec::with_capacity(fields.len());
        let mut lit_zs: Vec<f64> = Vec::with_capacity(fields.len());
        let mut lit_owner: Vec<usize> = Vec::with_capacity(fields.len());
        for (f, &(s, p)) in fields.into_iter().zip(&jobs) {
            if f.total_energy() > 0.0 {
                lit_fields.push(f);
                // `dp2hp` is propagation by `-z`.
                lit_zs.push(-states[s].zs[p]);
                lit_owner.push(s);
            }
        }
        // One coalesced backward sweep over every stack's lit planes;
        // accumulation stays serial, per stack, in plane order.
        let contributions = prop.propagate_planes(&lit_fields, &lit_zs);
        for acc in accs.iter_mut() {
            acc.samples_mut().fill(Complex64::ZERO);
        }
        for (contribution, &owner) in contributions.iter().zip(&lit_owner) {
            accs[owner].accumulate(contribution);
        }
        for (st, acc) in states.iter_mut().zip(accs.iter()) {
            // Phase-only constraint (SLM projection).
            st.hologram = acc.to_phase_only();
        }

        // Forward: measure achieved amplitudes on every stack's planes in
        // one coalesced sweep; the measurement loop below is a reduction and
        // stays serial, per stack, in plane order. Hologram samples are
        // copied into the reused forward buffers instead of cloning fresh
        // fields every iteration.
        for (field, &(s, _)) in fwd_fields.iter_mut().zip(&jobs) {
            field.samples_mut().copy_from_slice(states[s].hologram.samples());
        }
        let reconstructions = prop.propagate_planes(&fwd_fields, &fwd_zs);

        let mut offset = 0;
        for st in states.iter_mut() {
            let planes = st.zs.len();
            let recon = &reconstructions[offset..offset + planes];
            offset += planes;
            let mut achieved_min = f64::INFINITY;
            let mut achieved_max = 0.0f64;
            let mut on_target = 0.0;
            let mut total = 0.0;
            for (i, u) in recon.iter().enumerate() {
                total += u.total_energy();
                rels.clear();
                for idx in 0..st.rows * st.cols {
                    if st.targets[i][idx] > 0.0 {
                        let v = u.samples()[idx];
                        st.phases[i][idx] = v.arg();
                        // Normalize achieved vs desired so different target
                        // amplitudes compare fairly.
                        let rel = v.norm().max(1e-12) / st.targets[i][idx];
                        achieved_min = achieved_min.min(rel);
                        achieved_max = achieved_max.max(rel);
                        rels.push((idx, rel));
                        on_target += v.norm_sqr();
                    }
                }
                if !rels.is_empty() {
                    let mean =
                        rels.iter().map(|&(_, r)| r).sum::<f64>() / rels.len() as f64;
                    for &(idx, rel) in &rels {
                        // Standard GSW (adaptivity = 1.0) stays
                        // transcendental-free; IEEE pow(x, 1.0) == x, so the
                        // fast path is bit-identical to the former powf.
                        let gain = if config.adaptivity == 1.0 {
                            mean / rel
                        } else {
                            // holoar-lint: allow(float-determinism, reason = "a tuned GSW weight exponent requires a real power; the default adaptivity = 1.0 takes the exact division path above")
                            (mean / rel).powf(config.adaptivity)
                        };
                        st.weights[i][idx] *= gain;
                    }
                }
            }
            st.final_uniformity = if achieved_max > 0.0 {
                1.0 - (achieved_max - achieved_min) / (achieved_max + achieved_min)
            } else {
                0.0
            };
            st.final_efficiency = if total > 0.0 { on_target / total } else { 0.0 };
            let u = st.final_uniformity;
            st.uniformity_trace.push(u);
        }
    }

    states
        .into_iter()
        .map(|st| GswResult {
            hologram: st.hologram,
            uniformity: st.final_uniformity,
            efficiency: st.final_efficiency,
            uniformity_trace: st.uniformity_trace,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depthmap::DepthMap;

    fn spots_map(n: usize, spots: &[(usize, usize, f64)]) -> DepthMap {
        let mut amp = vec![0.0; n * n];
        let mut depth = vec![0.01; n * n];
        for &(r, c, z) in spots {
            amp[r * n + c] = 1.0;
            depth[r * n + c] = z;
        }
        DepthMap::new(n, n, amp, depth).unwrap()
    }

    fn ctx() -> ExecutionContext {
        ExecutionContext::serial()
    }

    #[test]
    fn produces_phase_only_hologram() {
        let dm = spots_map(32, &[(8, 8, 0.01), (24, 24, 0.02)]);
        let cfg = OpticalConfig::default();
        let result =
            run(&dm.slice(2, cfg), cfg, GswConfig { iterations: 2, adaptivity: 1.0 }, &ctx());
        for s in result.hologram.samples() {
            let r = s.norm();
            assert!(r == 0.0 || (r - 1.0).abs() < 1e-9, "non-unit amplitude {r}");
        }
    }

    #[test]
    fn uniformity_in_unit_interval_and_traced() {
        let dm = spots_map(32, &[(10, 10, 0.01), (20, 20, 0.015), (16, 8, 0.02)]);
        let cfg = OpticalConfig::default();
        let result =
            run(&dm.slice(3, cfg), cfg, GswConfig { iterations: 4, adaptivity: 1.0 }, &ctx());
        assert_eq!(result.uniformity_trace.len(), 4);
        for &u in &result.uniformity_trace {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn weighting_improves_uniformity_over_first_iteration() {
        let dm = spots_map(48, &[(12, 12, 0.01), (36, 36, 0.02), (12, 36, 0.03)]);
        let cfg = OpticalConfig::default();
        let result =
            run(&dm.slice(3, cfg), cfg, GswConfig { iterations: 5, adaptivity: 1.0 }, &ctx());
        let first = result.uniformity_trace[0];
        let best = result.uniformity_trace.iter().cloned().fold(0.0, f64::max);
        assert!(
            best >= first,
            "adaptive weighting should not make the best iteration worse: first={first} best={best}"
        );
    }

    #[test]
    fn adaptive_weighting_beats_plain_gerchberg_saxton() {
        // adaptivity = 0 disables the weight update, reducing GSW to plain
        // GS. The paper adopts the *weighted* variant for artifact
        // suppression [63]: final uniformity should not be worse.
        let dm = spots_map(48, &[(12, 12, 0.01), (36, 36, 0.02), (12, 36, 0.03), (30, 10, 0.015)]);
        let cfg = OpticalConfig::default();
        let plain =
            run(&dm.slice(4, cfg), cfg, GswConfig { iterations: 5, adaptivity: 0.0 }, &ctx());
        let weighted =
            run(&dm.slice(4, cfg), cfg, GswConfig { iterations: 5, adaptivity: 1.0 }, &ctx());
        assert!(
            weighted.uniformity >= plain.uniformity - 0.02,
            "weighted {:.3} vs plain {:.3}",
            weighted.uniformity,
            plain.uniformity
        );
    }

    #[test]
    fn efficiency_positive_for_lit_targets() {
        let dm = spots_map(32, &[(16, 16, 0.01)]);
        let cfg = OpticalConfig::default();
        let result =
            run(&dm.slice(1, cfg), cfg, GswConfig { iterations: 2, adaptivity: 1.0 }, &ctx());
        assert!(result.efficiency > 0.0);
        assert!(result.efficiency <= 1.0 + 1e-9);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let dm = spots_map(32, &[(8, 8, 0.01), (24, 24, 0.02), (16, 8, 0.03)]);
        let cfg = OpticalConfig::default();
        let gsw_cfg = GswConfig { iterations: 3, adaptivity: 1.0 };
        let serial = run(&dm.slice(3, cfg), cfg, gsw_cfg, &ctx());
        for workers in [1usize, 2, 7] {
            let par = run(
                &dm.slice(3, cfg),
                cfg,
                gsw_cfg,
                &ExecutionContext::with_workers(workers),
            );
            assert_eq!(par.hologram.samples(), serial.hologram.samples(), "workers {workers}");
            assert_eq!(par.uniformity.to_bits(), serial.uniformity.to_bits());
            assert_eq!(par.efficiency.to_bits(), serial.efficiency.to_bits());
            assert_eq!(par.uniformity_trace.len(), serial.uniformity_trace.len());
            for (a, b) in par.uniformity_trace.iter().zip(&serial.uniformity_trace) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batch_matches_independent_runs_bit_for_bit() {
        let cfg = OpticalConfig::default();
        let gsw_cfg = GswConfig { iterations: 3, adaptivity: 1.0 };
        let maps = [
            spots_map(32, &[(8, 8, 0.01), (24, 24, 0.02)]),
            spots_map(32, &[(10, 20, 0.015), (20, 10, 0.03), (16, 16, 0.01)]),
            spots_map(16, &[(4, 4, 0.02)]),
        ];
        let stacks: Vec<_> = [
            maps[0].slice(2, cfg),
            maps[1].slice(3, cfg),
            maps[2].slice(1, cfg),
        ]
        .into_iter()
        .collect();
        let solo: Vec<GswResult> =
            stacks.iter().map(|s| run(s, cfg, gsw_cfg, &ctx())).collect();
        for workers in [1usize, 2, 7] {
            let refs: Vec<&PlaneStack> = stacks.iter().collect();
            let batch =
                run_batch(&refs, cfg, gsw_cfg, &ExecutionContext::with_workers(workers));
            assert_eq!(batch.len(), solo.len());
            for (i, (a, b)) in batch.iter().zip(&solo).enumerate() {
                assert_eq!(
                    a.hologram.samples(),
                    b.hologram.samples(),
                    "stack {i} workers {workers}"
                );
                assert_eq!(a.uniformity.to_bits(), b.uniformity.to_bits());
                assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let dm = spots_map(8, &[(4, 4, 0.01)]);
        let cfg = OpticalConfig::default();
        run(&dm.slice(1, cfg), cfg, GswConfig { iterations: 0, adaptivity: 1.0 }, &ctx());
    }
}
