//! Adaptive weighted Gerchberg–Saxton (GSW) for phase-only holograms.
//!
//! The paper's hologram task runs "five iterations of the GSW algorithm"
//! (§2.2.1 footnote 3, refs \[49, 63\]): an iterative phase-retrieval loop
//! that finds a phase-only hologram whose reconstruction matches target
//! amplitudes on the depth planes, with per-target weights adapted each
//! iteration to equalize achieved intensities (artifact suppression per Wu
//! et al. \[63\]).
//!
//! Each iteration performs one `DP2HP` per plane (accumulate), a phase-only
//! projection at the hologram plane, and one `HP2DP` per plane (measure) —
//! the same kernel structure Algorithm 1 exhibits, which is why the GPU
//! model charges GSW as `iterations × (forward + backward)` plane sweeps.

use crate::depthmap::PlaneStack;
use crate::field::{Field, OpticalConfig};
use crate::propagate::Propagator;
use holoar_fft::{Complex64, Parallelism};

/// Configuration for the GSW loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GswConfig {
    /// Number of iterations. The paper profiles five.
    pub iterations: usize,
    /// Exponent on the weight update; `1.0` is standard GSW.
    pub adaptivity: f64,
}

impl Default for GswConfig {
    fn default() -> Self {
        GswConfig { iterations: 5, adaptivity: 1.0 }
    }
}

/// The result of a GSW run.
#[derive(Debug, Clone)]
pub struct GswResult {
    /// The phase-only hologram.
    pub hologram: Field,
    /// Uniformity of achieved target intensities after the final iteration,
    /// `1 − (max − min)/(max + min)` over lit pixels; `1.0` is perfect.
    pub uniformity: f64,
    /// Fraction of reconstructed energy landing on target pixels.
    pub efficiency: f64,
    /// Per-iteration uniformity trace (length = iterations).
    pub uniformity_trace: Vec<f64>,
}

/// Runs adaptive weighted Gerchberg–Saxton over a plane stack.
///
/// # Examples
///
/// ```
/// use holoar_optics::{gsw, DepthMap, GswConfig, OpticalConfig};
///
/// let mut amp = vec![0.0; 64 * 64];
/// amp[64 * 20 + 20] = 1.0;
/// amp[64 * 44 + 44] = 1.0;
/// let dm = DepthMap::new(64, 64, amp, vec![0.01; 64 * 64])?;
/// let cfg = OpticalConfig::default();
/// let result = gsw::run(&dm.slice(2, cfg), cfg, GswConfig::default());
/// assert!(result.uniformity > 0.5);
/// # Ok::<(), holoar_optics::BuildDepthMapError>(())
/// ```
///
/// # Panics
///
/// Panics if the stack is empty or `config.iterations == 0`.
pub fn run(stack: &PlaneStack, optics: OpticalConfig, config: GswConfig) -> GswResult {
    run_with(stack, optics, config, &Parallelism::serial())
}

/// [`run`] with depth planes fanned out over `par`.
///
/// Per-plane field construction and both propagation sweeps run
/// concurrently; every floating-point reduction (hologram accumulation,
/// energy totals, weight statistics) stays serial in plane order, so the
/// result is bit-identical to [`run`] for every worker count.
///
/// # Panics
///
/// Panics if the stack is empty or `config.iterations == 0`.
pub fn run_with(
    stack: &PlaneStack,
    optics: OpticalConfig,
    config: GswConfig,
    par: &Parallelism,
) -> GswResult {
    assert!(!stack.is_empty(), "GSW requires at least one depth plane");
    assert!(config.iterations > 0, "GSW requires at least one iteration");
    let _span = holoar_telemetry::span_cat("optics.gsw.run", "optics");
    holoar_telemetry::gauge_set("optics.gsw.planes", stack.len() as f64);
    let rows = stack.plane(0).field.rows();
    let cols = stack.plane(0).field.cols();
    let mut prop = Propagator::with_parallelism(par.clone());
    let plane_indices: Vec<usize> = (0..stack.len()).collect();
    let zs: Vec<f64> = stack.iter().map(|p| p.z).collect();

    // Target amplitudes and lit-pixel masks per plane.
    let targets: Vec<Vec<f64>> = stack.iter().map(|p| p.field.amplitude()).collect();
    let mut weights: Vec<Vec<f64>> = targets
        .iter()
        .map(|t| t.iter().map(|&a| if a > 0.0 { 1.0 } else { 0.0 }).collect())
        .collect();
    // Per-plane phase estimates, initialized flat.
    let mut phases: Vec<Vec<f64>> = vec![vec![0.0; rows * cols]; stack.len()];

    let mut hologram = Field::zeros(rows, cols, optics);
    let mut uniformity_trace = Vec::with_capacity(config.iterations);
    let mut final_uniformity = 0.0;
    let mut final_efficiency = 0.0;

    for _ in 0..config.iterations {
        let _iter_span = holoar_telemetry::span_cat("optics.gsw.iteration", "optics");
        // Backward: superpose weighted targets on the hologram plane. The
        // per-plane fields only read targets/weights/phases, so construction
        // fans out; dark planes are skipped exactly like the serial loop.
        let fields: Vec<Field> = par.map(&plane_indices, |&i| {
            let mut f = Field::zeros(rows, cols, optics);
            for idx in 0..rows * cols {
                let a = targets[i][idx] * weights[i][idx];
                if a > 0.0 {
                    f.samples_mut()[idx] = Complex64::from_polar(a, phases[i][idx]);
                }
            }
            f
        });
        let mut lit_fields: Vec<Field> = Vec::with_capacity(fields.len());
        let mut lit_zs: Vec<f64> = Vec::with_capacity(fields.len());
        for (f, &z) in fields.into_iter().zip(&zs) {
            if f.total_energy() > 0.0 {
                lit_fields.push(f);
                // `dp2hp` is propagation by `-z`.
                lit_zs.push(-z);
            }
        }
        let mut acc = Field::zeros(rows, cols, optics);
        // Accumulation stays serial, in plane order.
        for contribution in &prop.propagate_planes(&lit_fields, &lit_zs) {
            acc.accumulate(contribution);
        }
        // Phase-only constraint (SLM projection).
        hologram = acc.to_phase_only();

        // Forward: measure achieved amplitudes, update phases and weights.
        // Propagation to every plane is independent; the measurement loop
        // below is a reduction and stays serial in plane order.
        let reconstructions = prop.propagate_batch(&hologram, &zs);
        let mut achieved_min = f64::INFINITY;
        let mut achieved_max = 0.0f64;
        let mut on_target = 0.0;
        let mut total = 0.0;
        for (i, u) in reconstructions.iter().enumerate() {
            total += u.total_energy();
            let mut rels: Vec<(usize, f64)> = Vec::new();
            for idx in 0..rows * cols {
                if targets[i][idx] > 0.0 {
                    let v = u.samples()[idx];
                    phases[i][idx] = v.arg();
                    // Normalize achieved vs desired so different target
                    // amplitudes compare fairly.
                    let rel = v.norm().max(1e-12) / targets[i][idx];
                    achieved_min = achieved_min.min(rel);
                    achieved_max = achieved_max.max(rel);
                    rels.push((idx, rel));
                    on_target += v.norm_sqr();
                }
            }
            if !rels.is_empty() {
                let mean = rels.iter().map(|&(_, r)| r).sum::<f64>() / rels.len() as f64;
                for &(idx, rel) in &rels {
                    weights[i][idx] *= (mean / rel).powf(config.adaptivity);
                }
            }
        }
        final_uniformity = if achieved_max > 0.0 {
            1.0 - (achieved_max - achieved_min) / (achieved_max + achieved_min)
        } else {
            0.0
        };
        final_efficiency = if total > 0.0 { on_target / total } else { 0.0 };
        uniformity_trace.push(final_uniformity);
    }

    GswResult {
        hologram,
        uniformity: final_uniformity,
        efficiency: final_efficiency,
        uniformity_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depthmap::DepthMap;

    fn spots_map(n: usize, spots: &[(usize, usize, f64)]) -> DepthMap {
        let mut amp = vec![0.0; n * n];
        let mut depth = vec![0.01; n * n];
        for &(r, c, z) in spots {
            amp[r * n + c] = 1.0;
            depth[r * n + c] = z;
        }
        DepthMap::new(n, n, amp, depth).unwrap()
    }

    #[test]
    fn produces_phase_only_hologram() {
        let dm = spots_map(32, &[(8, 8, 0.01), (24, 24, 0.02)]);
        let cfg = OpticalConfig::default();
        let result = run(&dm.slice(2, cfg), cfg, GswConfig { iterations: 2, adaptivity: 1.0 });
        for s in result.hologram.samples() {
            let r = s.norm();
            assert!(r == 0.0 || (r - 1.0).abs() < 1e-9, "non-unit amplitude {r}");
        }
    }

    #[test]
    fn uniformity_in_unit_interval_and_traced() {
        let dm = spots_map(32, &[(10, 10, 0.01), (20, 20, 0.015), (16, 8, 0.02)]);
        let cfg = OpticalConfig::default();
        let result = run(&dm.slice(3, cfg), cfg, GswConfig { iterations: 4, adaptivity: 1.0 });
        assert_eq!(result.uniformity_trace.len(), 4);
        for &u in &result.uniformity_trace {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn weighting_improves_uniformity_over_first_iteration() {
        let dm = spots_map(48, &[(12, 12, 0.01), (36, 36, 0.02), (12, 36, 0.03)]);
        let cfg = OpticalConfig::default();
        let result = run(&dm.slice(3, cfg), cfg, GswConfig { iterations: 5, adaptivity: 1.0 });
        let first = result.uniformity_trace[0];
        let best = result.uniformity_trace.iter().cloned().fold(0.0, f64::max);
        assert!(
            best >= first,
            "adaptive weighting should not make the best iteration worse: first={first} best={best}"
        );
    }

    #[test]
    fn adaptive_weighting_beats_plain_gerchberg_saxton() {
        // adaptivity = 0 disables the weight update, reducing GSW to plain
        // GS. The paper adopts the *weighted* variant for artifact
        // suppression [63]: final uniformity should not be worse.
        let dm = spots_map(48, &[(12, 12, 0.01), (36, 36, 0.02), (12, 36, 0.03), (30, 10, 0.015)]);
        let cfg = OpticalConfig::default();
        let plain = run(&dm.slice(4, cfg), cfg, GswConfig { iterations: 5, adaptivity: 0.0 });
        let weighted = run(&dm.slice(4, cfg), cfg, GswConfig { iterations: 5, adaptivity: 1.0 });
        assert!(
            weighted.uniformity >= plain.uniformity - 0.02,
            "weighted {:.3} vs plain {:.3}",
            weighted.uniformity,
            plain.uniformity
        );
    }

    #[test]
    fn efficiency_positive_for_lit_targets() {
        let dm = spots_map(32, &[(16, 16, 0.01)]);
        let cfg = OpticalConfig::default();
        let result = run(&dm.slice(1, cfg), cfg, GswConfig { iterations: 2, adaptivity: 1.0 });
        assert!(result.efficiency > 0.0);
        assert!(result.efficiency <= 1.0 + 1e-9);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let dm = spots_map(32, &[(8, 8, 0.01), (24, 24, 0.02), (16, 8, 0.03)]);
        let cfg = OpticalConfig::default();
        let gsw_cfg = GswConfig { iterations: 3, adaptivity: 1.0 };
        let serial = run(&dm.slice(3, cfg), cfg, gsw_cfg);
        for workers in [1usize, 2, 7] {
            let par = run_with(&dm.slice(3, cfg), cfg, gsw_cfg, &Parallelism::new(workers));
            assert_eq!(par.hologram.samples(), serial.hologram.samples(), "workers {workers}");
            assert_eq!(par.uniformity.to_bits(), serial.uniformity.to_bits());
            assert_eq!(par.efficiency.to_bits(), serial.efficiency.to_bits());
            assert_eq!(par.uniformity_trace.len(), serial.uniformity_trace.len());
            for (a, b) in par.uniformity_trace.iter().zip(&serial.uniformity_trace) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let dm = spots_map(8, &[(4, 4, 0.01)]);
        let cfg = OpticalConfig::default();
        run(&dm.slice(1, cfg), cfg, GswConfig { iterations: 0, adaptivity: 1.0 });
    }
}
