//! Viewing-window sub-holograms (Reichelt et al. \[52\]) — the paper's
//! *Baseline* design.
//!
//! A tracked viewing window means only the hologram region steering light
//! into the user's eye box needs computing. This module provides the region
//! arithmetic (intersection with the hologram aperture, coverage fractions —
//! what the performance model scales work by) and the field clipping used by
//! the quality path.

use crate::field::Field;
use holoar_fft::Complex64;

/// A rectangular pixel region of the hologram plane.
///
/// # Examples
///
/// ```
/// use holoar_optics::Region;
///
/// let full = Region::new(0, 0, 100, 100);
/// let window = Region::new(25, 25, 50, 50);
/// assert_eq!(window.intersect(&full), Some(window));
/// assert!((window.coverage_of(&full) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Top row (inclusive).
    pub row: usize,
    /// Left column (inclusive).
    pub col: usize,
    /// Height in pixels.
    pub rows: usize,
    /// Width in pixels.
    pub cols: usize,
}

impl Region {
    /// Creates a region from its top-left corner and extent.
    pub const fn new(row: usize, col: usize, rows: usize, cols: usize) -> Self {
        Region { row, col, rows, cols }
    }

    /// The full aperture of a `rows × cols` hologram.
    pub const fn full(rows: usize, cols: usize) -> Self {
        Region { row: 0, col: 0, rows, cols }
    }

    /// Pixel count.
    pub fn area(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the region contains no pixels.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Exclusive bottom row.
    pub fn row_end(&self) -> usize {
        self.row + self.rows
    }

    /// Exclusive right column.
    pub fn col_end(&self) -> usize {
        self.col + self.cols
    }

    /// Whether `(row, col)` lies inside.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        row >= self.row && row < self.row_end() && col >= self.col && col < self.col_end()
    }

    /// The intersection with another region, or `None` when disjoint.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        let row = self.row.max(other.row);
        let col = self.col.max(other.col);
        let row_end = self.row_end().min(other.row_end());
        let col_end = self.col_end().min(other.col_end());
        if row < row_end && col < col_end {
            Some(Region::new(row, col, row_end - row, col_end - col))
        } else {
            None
        }
    }

    /// Fraction of `other`'s area this region covers after intersection, in
    /// `[0, 1]`. This is the work-scaling factor for sub-hologram computation:
    /// an object halfway out of the viewing window only computes the inside
    /// half (Fig 5a, Frame-II's football).
    pub fn coverage_of(&self, other: &Region) -> f64 {
        if other.area() == 0 {
            return 0.0;
        }
        match self.intersect(other) {
            Some(r) => r.area() as f64 / other.area() as f64,
            None => 0.0,
        }
    }
}

/// Zeroes every sample of `field` outside `region`, returning the clipped
/// field — the optical effect of computing only the sub-hologram.
///
/// # Examples
///
/// ```
/// use holoar_optics::{subhologram, Field, OpticalConfig, Region};
///
/// let f = Field::from_amplitude(4, 4, OpticalConfig::default(), &[1.0; 16]);
/// let clipped = subhologram::clip_to_region(&f, Region::new(0, 0, 2, 2));
/// assert_eq!(clipped.total_energy(), 4.0);
/// ```
pub fn clip_to_region(field: &Field, region: Region) -> Field {
    let mut out = field.clone();
    for r in 0..field.rows() {
        for c in 0..field.cols() {
            if !region.contains(r, c) {
                out.set(r, c, Complex64::ZERO);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::OpticalConfig;

    #[test]
    fn region_geometry() {
        let r = Region::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.row_end(), 6);
        assert_eq!(r.col_end(), 8);
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
        assert!(!r.contains(2, 8));
        assert!(!Region::new(0, 0, 0, 5).area() > 0);
        assert!(Region::new(0, 0, 0, 5).is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = Region::new(0, 0, 10, 10);
        let b = Region::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Region::new(5, 5, 5, 5)));
        let c = Region::new(20, 20, 2, 2);
        assert_eq!(a.intersect(&c), None);
        // Intersection is symmetric.
        assert_eq!(a.intersect(&b), b.intersect(&a));
        // Self-intersection is identity.
        assert_eq!(a.intersect(&a), Some(a));
    }

    #[test]
    fn coverage_fractions() {
        let window = Region::new(0, 0, 10, 10);
        let inside = Region::new(2, 2, 4, 4);
        let partial = Region::new(5, 5, 10, 10);
        let outside = Region::new(50, 50, 5, 5);
        assert_eq!(window.coverage_of(&inside), 1.0);
        assert_eq!(window.coverage_of(&partial), 0.25);
        assert_eq!(window.coverage_of(&outside), 0.0);
        assert_eq!(window.coverage_of(&Region::new(0, 0, 0, 0)), 0.0);
    }

    #[test]
    fn clipping_preserves_inside_and_zeroes_outside() {
        let f = Field::from_amplitude(4, 4, OpticalConfig::default(), &[2.0; 16]);
        let clipped = clip_to_region(&f, Region::new(1, 1, 2, 2));
        assert_eq!(clipped.total_energy(), 4.0 * 4.0);
        assert_eq!(clipped.at(0, 0), Complex64::ZERO);
        assert_eq!(clipped.at(1, 1), Complex64::new(2.0, 0.0));
    }

    #[test]
    fn full_region_clipping_is_identity() {
        let f = Field::from_amplitude(3, 5, OpticalConfig::default(), &[1.5; 15]);
        let clipped = clip_to_region(&f, Region::full(3, 5));
        assert_eq!(clipped, f);
    }
}
