//! The depthmap hologram algorithm — Algorithm 1 of the paper.
//!
//! Two steps over `M` depth planes (Fig 4a):
//!
//! 1. **Forward propagation**: walking the plane stack, each plane is
//!    *overlaid* on the propagation result of the planes before it. We walk
//!    nearest-first and maintain an occlusion mask, so content on nearer
//!    planes hides content behind it (the silhouette method used by
//!    layer-based CGH). Each plane transition is one `HP2DP`-shaped
//!    propagation and ends with an intra-block synchronization (Line 6).
//! 2. **Backward propagation**: every composited plane field is
//!    back-propagated to the hologram plane via `DP2HP` and accumulated
//!    (`Hologram[p'] += DP2HP(i, p')`, Line 11), with a final inter-block
//!    synchronization (Line 13).
//!
//! The returned [`HologramStats`] mirror the work/synchronization counts the
//! GPU-mapping layer (`holoar-gpusim`) uses to model latency and energy: the
//! number of depth planes drives both compute volume and barrier count, which
//! is precisely the lever HoloAR's approximation schemes pull.

use crate::depthmap::{DepthMap, PlaneStack};
use crate::field::{Field, OpticalConfig};
use crate::propagate::Propagator;
use holoar_fft::ExecutionContext;

/// Instrumentation counters for one hologram computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HologramStats {
    /// Number of depth planes `M` processed.
    pub plane_count: usize,
    /// Pixels per plane (`rows × cols`).
    pub pixels_per_plane: usize,
    /// `HP2DP`-shaped propagations in the forward step.
    pub forward_propagations: usize,
    /// `DP2HP`-shaped propagations in the backward step.
    pub backward_propagations: usize,
    /// Intra-block synchronizations (one per plane per step; Algo 1 Line 6).
    pub intra_block_syncs: usize,
    /// Inter-block synchronizations (Algo 1 Lines 8 and 13).
    pub inter_block_syncs: usize,
}

impl HologramStats {
    /// Total propagation count, the dominant compute term.
    pub fn total_propagations(&self) -> usize {
        self.forward_propagations + self.backward_propagations
    }
}

/// The output of [`depthmap_hologram`]: the complex hologram plus the
/// instrumentation used by the performance model.
#[derive(Debug, Clone)]
pub struct HologramResult {
    /// The complex field on the hologram plane.
    pub hologram: Field,
    /// Work/synchronization counters.
    pub stats: HologramStats,
}

/// Computes a hologram from a depthmap sliced into `plane_count` planes.
///
/// This is the paper's `Depthmap_Hologram(M, DP)` entry point. HoloAR's
/// approximation schemes call this exact function and vary only
/// `plane_count` — "the original hologram execution engine \[is reused\]
/// without any architectural modifications or reprogramming" (§4.3).
///
/// # Examples
///
/// ```
/// use holoar_fft::ExecutionContext;
/// use holoar_optics::{algorithm1, DepthMap, OpticalConfig};
///
/// let dm = DepthMap::new(8, 8, vec![1.0; 64], vec![0.05; 64])?;
/// let ctx = ExecutionContext::serial();
/// let result = algorithm1::depthmap_hologram(&dm, 4, OpticalConfig::default(), &ctx);
/// assert_eq!(result.stats.plane_count, 4);
/// # Ok::<(), holoar_optics::BuildDepthMapError>(())
/// ```
///
/// # Panics
///
/// Panics if `plane_count == 0`.
pub fn depthmap_hologram(
    depthmap: &DepthMap,
    plane_count: usize,
    config: OpticalConfig,
    ctx: &ExecutionContext,
) -> HologramResult {
    let stack = depthmap.slice(plane_count, config);
    hologram_from_planes(&stack, config, ctx)
}

/// Computes a hologram from an already-sliced plane stack.
///
/// Exposed separately so S-CGH (Fig 9c) can pass a [`PlaneStack::subset`].
///
/// The forward compositing walk is inherently sequential (the occlusion mask
/// carries across planes) and cheap, so it stays serial. Back-propagations
/// are independent and fan out over the context's worker pool; the hologram
/// accumulation is a floating-point reduction and stays serial in stack
/// order, so the result is bit-identical for every worker count. All
/// counters in [`HologramStats`] are unchanged — parallelism is an execution
/// detail, not a change to the modeled work.
///
/// # Panics
///
/// Panics if the stack is empty.
pub fn hologram_from_planes(
    stack: &PlaneStack,
    config: OpticalConfig,
    ctx: &ExecutionContext,
) -> HologramResult {
    assert!(!stack.is_empty(), "hologram requires at least one depth plane");
    let _span = holoar_telemetry::span_cat("optics.algorithm1.hologram", "optics");
    holoar_telemetry::gauge_set("optics.algorithm1.planes", stack.len() as f64);
    let rows = stack.plane(0).field.rows();
    let cols = stack.plane(0).field.cols();
    let mut prop = Propagator::with_context(ctx);

    // ---- Step 1: forward propagation with occlusion compositing ----
    // Walk nearest-first; pixels covered by a nearer plane are removed from
    // farther planes (the "overlay" of Algo 1).
    let mut covered = vec![false; rows * cols];
    let mut intra_planes: Vec<Field> = Vec::with_capacity(stack.len());
    let mut forward_propagations = 0usize;
    for plane in stack.iter() {
        // One HP2DP-shaped propagation per plane: the running composite is
        // carried from the previous plane (illumination for the first).
        forward_propagations += 1;

        let mut composited = plane.field.clone();
        for (idx, sample) in composited.samples_mut().iter_mut().enumerate() {
            if covered[idx] {
                *sample = holoar_fft::Complex64::ZERO;
            } else if sample.norm_sqr() > 0.0 {
                covered[idx] = true;
            }
        }
        intra_planes.push(composited);
    }

    // ---- Step 2: backward propagation, accumulating onto the hologram ----
    let mut hologram = Field::zeros(rows, cols, config);
    let mut backward_propagations = 0usize;
    let mut lit_fields: Vec<Field> = Vec::with_capacity(intra_planes.len());
    let mut lit_zs: Vec<f64> = Vec::with_capacity(intra_planes.len());
    for (plane, composited) in stack.iter().zip(intra_planes) {
        backward_propagations += 1;
        if plane.lit_pixels == 0 && composited.total_energy() == 0.0 {
            // The kernel still launches for empty planes on real hardware,
            // but contributes nothing optically; skip the math, count the work.
            continue;
        }
        // `dp2hp` is propagation by `-z`.
        lit_fields.push(composited);
        lit_zs.push(-plane.z);
    }
    // Independent back-propagations fan out; accumulation stays serial, in
    // stack order.
    for contribution in &prop.propagate_planes(&lit_fields, &lit_zs) {
        hologram.accumulate(contribution);
    }

    let stats = HologramStats {
        plane_count: stack.len(),
        pixels_per_plane: rows * cols,
        forward_propagations,
        backward_propagations,
        // One intra-block barrier per plane per step (Lines 6 and 12).
        intra_block_syncs: 2 * stack.len(),
        // Lines 8 and 13.
        inter_block_syncs: 2,
    };
    HologramResult { hologram, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depthmap::DepthMap;
    use crate::reconstruct;

    fn ctx() -> ExecutionContext {
        ExecutionContext::serial()
    }

    fn two_point_map(n: usize) -> DepthMap {
        let mut amp = vec![0.0; n * n];
        let mut depth = vec![0.02; n * n];
        amp[(n / 4) * n + n / 4] = 1.0;
        depth[(n / 4) * n + n / 4] = 0.01;
        amp[(3 * n / 4) * n + 3 * n / 4] = 1.0;
        depth[(3 * n / 4) * n + 3 * n / 4] = 0.03;
        DepthMap::new(n, n, amp, depth).unwrap()
    }

    #[test]
    fn stats_scale_with_plane_count() {
        let dm = two_point_map(16);
        let cfg = OpticalConfig::default();
        let a = depthmap_hologram(&dm, 4, cfg, &ctx());
        let b = depthmap_hologram(&dm, 8, cfg, &ctx());
        assert_eq!(a.stats.plane_count, 4);
        assert_eq!(b.stats.plane_count, 8);
        assert_eq!(b.stats.total_propagations(), 2 * a.stats.total_propagations());
        assert_eq!(a.stats.intra_block_syncs, 8);
        assert_eq!(b.stats.intra_block_syncs, 16);
        assert_eq!(a.stats.inter_block_syncs, 2);
    }

    #[test]
    fn hologram_is_nonzero_for_lit_input() {
        let dm = two_point_map(16);
        let result = depthmap_hologram(&dm, 4, OpticalConfig::default(), &ctx());
        assert!(result.hologram.total_energy() > 0.0);
    }

    #[test]
    fn empty_scene_yields_zero_hologram() {
        let dm = DepthMap::new(8, 8, vec![0.0; 64], vec![1.0; 64]).unwrap();
        let result = depthmap_hologram(&dm, 4, OpticalConfig::default(), &ctx());
        assert_eq!(result.hologram.total_energy(), 0.0);
        assert_eq!(result.stats.plane_count, 4);
    }

    #[test]
    fn reconstruction_focuses_at_source_depth() {
        // A single point at depth z should reconstruct to a sharp peak at z
        // and a blurrier spot at other depths.
        let n = 64;
        let mut amp = vec![0.0; n * n];
        let mut depth = vec![0.02; n * n];
        amp[(n / 2) * n + n / 2] = 1.0;
        depth[(n / 2) * n + n / 2] = 0.004;
        let dm = DepthMap::new(n, n, amp, depth).unwrap();
        let cfg = OpticalConfig::default();
        let holo = depthmap_hologram(&dm, 1, cfg, &ctx());
        let mut prop = Propagator::new();
        let at_focus = reconstruct::reconstruct_intensity(&holo.hologram, 0.004, &mut prop);
        let defocus = reconstruct::reconstruct_intensity(&holo.hologram, 0.012, &mut prop);
        let peak = |img: &[f64]| img.iter().cloned().fold(0.0, f64::max);
        assert!(peak(&at_focus) > 2.0 * peak(&defocus));
    }

    #[test]
    fn occlusion_removes_hidden_pixels() {
        // Same pixel lit on two depths: the nearer wins, the farther is
        // occluded, so total contributing pixels stays 1 per location.
        let n = 8;
        let cfg = OpticalConfig::default();
        // Construct two planes manually via slicing a map whose single lit
        // pixel sits at the near depth, then verify stacking a far duplicate
        // doesn't change the hologram energy ordering.
        let mut amp = vec![0.0; n * n];
        let mut depth = vec![0.01; n * n];
        amp[n * 4 + 4] = 1.0;
        depth[n * 4 + 4] = 0.01;
        let near_only = DepthMap::new(n, n, amp.clone(), depth.clone()).unwrap();
        let near = depthmap_hologram(&near_only, 2, cfg, &ctx());

        // Now also light a *different* pixel far away — energy should grow.
        amp[n * 2 + 2] = 1.0;
        depth[n * 2 + 2] = 0.03;
        let both = DepthMap::new(n, n, amp, depth).unwrap();
        let two = depthmap_hologram(&both, 2, cfg, &ctx());
        assert!(two.hologram.total_energy() > near.hologram.total_energy());
    }

    #[test]
    fn parallel_hologram_is_bit_identical_to_serial() {
        let dm = two_point_map(16);
        let cfg = OpticalConfig::default();
        let serial = depthmap_hologram(&dm, 6, cfg, &ctx());
        for workers in [1usize, 2, 7] {
            let par = depthmap_hologram(&dm, 6, cfg, &ExecutionContext::with_workers(workers));
            assert_eq!(
                par.hologram.samples(),
                serial.hologram.samples(),
                "workers {workers}"
            );
            assert_eq!(par.stats, serial.stats);
        }
    }

    #[test]
    #[should_panic(expected = "zero depth planes")]
    fn zero_planes_panics() {
        depthmap_hologram(&two_point_map(8), 0, OpticalConfig::default(), &ctx());
    }

    #[test]
    fn subset_stack_runs_fewer_planes() {
        let dm = two_point_map(16);
        let cfg = OpticalConfig::default();
        let stack = dm.slice(8, cfg);
        let sub = stack.subset(2, 5);
        let result = hologram_from_planes(&sub, cfg, &ctx());
        assert_eq!(result.stats.plane_count, 4);
    }
}
