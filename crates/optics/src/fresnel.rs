//! Fresnel (paraxial) propagation — the second diffraction kernel of the
//! CWO++-style toolbox.
//!
//! The Fresnel transfer function is the small-angle expansion of the angular
//! spectrum:
//!
//! ```text
//! H(fx, fy; z) = e^{ikz} · exp(−iπλz(fx² + fy²))
//! ```
//!
//! It is cheaper to build (no square root per bin), exactly unitary
//! (`|H| = 1` everywhere, no evanescent loss), and accurate whenever the
//! field's spectrum stays paraxial. Hologram engines commonly offer both;
//! this reproduction defaults to the angular-spectrum method
//! ([`crate::propagate`]) and exposes Fresnel for comparison and for the
//! regime tests in this module.

use std::collections::HashMap;

use holoar_fft::{Complex64, Fft2d};

use crate::field::Field;

/// Fresnel-kernel propagator with cached plans and transfer functions.
///
/// # Examples
///
/// ```
/// use holoar_optics::{Field, FresnelPropagator, OpticalConfig};
///
/// let cfg = OpticalConfig::default();
/// let field = Field::from_amplitude(16, 16, cfg, &[1.0; 256]);
/// let mut prop = FresnelPropagator::new();
/// let out = prop.propagate(&field, 0.001);
/// // Fresnel propagation is exactly unitary.
/// assert!((out.total_energy() - field.total_energy()).abs() < 1e-9);
/// ```
#[derive(Debug, Default)]
pub struct FresnelPropagator {
    ffts: HashMap<(usize, usize), Fft2d>,
    transfer: HashMap<(usize, usize, u64, u64), Vec<Complex64>>,
}

impl FresnelPropagator {
    /// Creates an empty propagator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Propagates `field` by a signed distance `z` (meters) under the
    /// paraxial approximation.
    ///
    /// # Panics
    ///
    /// Panics if `z` is not finite.
    pub fn propagate(&mut self, field: &Field, z: f64) -> Field {
        assert!(z.is_finite(), "propagation distance must be finite");
        if z == 0.0 {
            return field.clone();
        }
        let (rows, cols) = (field.rows(), field.cols());
        let fft = self
            .ffts
            .entry((rows, cols))
            .or_insert_with(|| Fft2d::new(rows, cols))
            .clone();
        let cfg = field.config();
        let key = (rows, cols, z.to_bits(), cfg.wavelength.to_bits());
        self.transfer.entry(key).or_insert_with(|| transfer_function(rows, cols, cfg.pitch, cfg.wavelength, z));
        let h = &self.transfer[&key];

        let mut spectrum = field.samples().to_vec();
        fft.forward(&mut spectrum);
        for (s, t) in spectrum.iter_mut().zip(h) {
            *s *= *t;
        }
        fft.inverse(&mut spectrum);
        Field::from_data(rows, cols, cfg, spectrum)
    }

    /// Number of cached transfer functions.
    pub fn cached_transfer_count(&self) -> usize {
        self.transfer.len()
    }
}

/// The Fresnel number `a² / (λ·z)` for a half-aperture `a`: the standard
/// validity gauge (paraxial Fresnel holds for moderate Fresnel numbers and
/// small diffraction angles).
///
/// # Panics
///
/// Panics if any argument is not positive and finite.
pub fn fresnel_number(half_aperture: f64, wavelength: f64, z: f64) -> f64 {
    for (name, v) in [("half_aperture", half_aperture), ("wavelength", wavelength), ("z", z)] {
        assert!(v > 0.0 && v.is_finite(), "{name} must be positive and finite");
    }
    half_aperture * half_aperture / (wavelength * z)
}

fn transfer_function(rows: usize, cols: usize, pitch: f64, wavelength: f64, z: f64) -> Vec<Complex64> {
    let k = 2.0 * std::f64::consts::PI / wavelength;
    let dfx = 1.0 / (cols as f64 * pitch);
    let dfy = 1.0 / (rows as f64 * pitch);
    let mut h = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let fr = if r <= rows / 2 { r as f64 } else { r as f64 - rows as f64 } * dfy;
        for c in 0..cols {
            let fc = if c <= cols / 2 { c as f64 } else { c as f64 - cols as f64 } * dfx;
            let phase = k * z - std::f64::consts::PI * wavelength * z * (fc * fc + fr * fr);
            h.push(Complex64::cis(phase));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::OpticalConfig;
    use crate::propagate::Propagator;

    fn gaussian(n: usize, sigma2: f64) -> Field {
        let cfg = OpticalConfig::default();
        let mut f = Field::zeros(n, n, cfg);
        for r in 0..n {
            for c in 0..n {
                let dr = r as f64 - n as f64 / 2.0;
                let dc = c as f64 - n as f64 / 2.0;
                f.set(r, c, Complex64::new((-(dr * dr + dc * dc) / sigma2).exp(), 0.0));
            }
        }
        f
    }

    #[test]
    fn zero_distance_is_identity() {
        let f = gaussian(16, 20.0);
        let out = FresnelPropagator::new().propagate(&f, 0.0);
        assert_eq!(out.samples(), f.samples());
    }

    #[test]
    fn exactly_unitary_for_any_field() {
        // Unlike the band-limited ASM, |H| = 1 for every bin.
        let f = gaussian(32, 10.0);
        let e0 = f.total_energy();
        let out = FresnelPropagator::new().propagate(&f, 0.004);
        assert!((out.total_energy() - e0).abs() < 1e-9 * e0);
    }

    #[test]
    fn roundtrip_is_identity() {
        let f = gaussian(32, 30.0);
        let mut p = FresnelPropagator::new();
        let fwd = p.propagate(&f, 0.002);
        let back = p.propagate(&fwd, -0.002);
        for (a, b) in back.samples().iter().zip(f.samples()) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn agrees_with_angular_spectrum_in_paraxial_regime() {
        // A smooth (low-NA) field over a short distance: the paraxial
        // expansion should match the exact kernel closely.
        let f = gaussian(64, 120.0);
        let z = 0.001;
        let fresnel = FresnelPropagator::new().propagate(&f, z);
        let asm = Propagator::new().propagate(&f, z);
        let diff: f64 = fresnel
            .samples()
            .iter()
            .zip(asm.samples())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum();
        let energy = f.total_energy();
        assert!(diff / energy < 1e-3, "relative L2 gap {}", diff / energy);
    }

    #[test]
    fn diverges_from_angular_spectrum_at_high_na() {
        // A near-delta field (full-bandwidth spectrum) breaks the paraxial
        // assumption; the kernels should now disagree noticeably more.
        let mut near_delta = Field::zeros(64, 64, OpticalConfig::default());
        near_delta.set(32, 32, Complex64::ONE);
        let z = 0.001;
        let gap = |f: &Field| {
            let fres = FresnelPropagator::new().propagate(f, z);
            let asm = Propagator::new().propagate(f, z);
            fres.samples()
                .iter()
                .zip(asm.samples())
                .map(|(a, b)| (*a - *b).norm_sqr())
                .sum::<f64>()
                / f.total_energy()
        };
        let smooth = gaussian(64, 120.0);
        assert!(gap(&near_delta) > 10.0 * gap(&smooth));
    }

    #[test]
    fn transfer_functions_are_cached() {
        let f = gaussian(16, 20.0);
        let mut p = FresnelPropagator::new();
        p.propagate(&f, 0.001);
        p.propagate(&f, 0.001);
        assert_eq!(p.cached_transfer_count(), 1);
    }

    #[test]
    fn fresnel_number_gauge() {
        // 0.2 mm half-aperture, 532 nm, 10 mm: N_F ≈ 7.5 — comfortably
        // within the Fresnel regime.
        let nf = fresnel_number(0.2e-3, 532e-9, 0.01);
        assert!((nf - 7.5).abs() < 0.1, "N_F = {nf}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fresnel_number_validates() {
        fresnel_number(0.0, 532e-9, 0.01);
    }
}
