//! Scalar diffraction between parallel planes: the angular-spectrum method.
//!
//! This is the numerical core of the depthmap hologram algorithm. A field is
//! propagated a signed distance `z` by multiplying its spatial spectrum with
//! the free-space transfer function
//!
//! ```text
//! H(fx, fy; z) = exp( i·k·z·sqrt(1 − (λ·fx)² − (λ·fy)²) )
//! ```
//!
//! with evanescent components (the root going imaginary) attenuated. The
//! paper's `HP2DP` (hologram plane → depth plane) and `DP2HP` (depth plane →
//! hologram plane) procedures are thin directional wrappers over this
//! operator.
//!
//! A [`Propagator`] caches FFT plans and transfer functions behind shared
//! thread-safe maps (clones of a propagator share one cache), because the
//! hologram pipeline propagates dozens of planes of identical shape per
//! frame. Independent planes can be propagated concurrently through the
//! batch APIs ([`Propagator::propagate_batch`] /
//! [`Propagator::propagate_planes`]); the batch results are bit-identical
//! to the equivalent serial loop for every worker count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use holoar_fft::{Complex32, Complex64, ExecutionContext, Fft2d, Parallelism, Precision};

use crate::field::{Field, OpticalConfig};

/// Cache key for a transfer function: shape plus the bit patterns of the
/// distance, wavelength and pixel pitch that define it.
type TransferKey = (usize, usize, u64, u64, u64);

/// Shared FFT-plan map at one scalar precision.
type FftMap<T> = Arc<Mutex<HashMap<(usize, usize), Fft2d<T>>>>;

/// Shared transfer-function map at one complex width.
type TransferMap<C> = Arc<Mutex<HashMap<TransferKey, Arc<Vec<C>>>>>;

/// The [`ExecutionContext`] shared slot a context-built propagator pulls its
/// caches from: every propagator constructed from the same context (or a
/// clone of it) shares one FFT-plan map and one transfer-function map (per
/// precision).
#[derive(Debug, Default)]
struct PropagatorCaches {
    ffts: FftMap<f64>,
    transfer: TransferMap<Complex64>,
    ffts32: FftMap<f32>,
    transfer32: TransferMap<Complex32>,
}

/// A plane's prepared propagation inputs: the zero-distance identity, or a
/// serial FFT twin plus the shared transfer function at the propagator's
/// precision.
#[derive(Debug)]
enum PreparedPlane {
    Identity,
    Wide(Fft2d, Arc<Vec<Complex64>>),
    Narrow(Fft2d<f32>, Arc<Vec<Complex32>>),
}

/// Angular-spectrum propagator with cached plans and transfer functions.
///
/// The caches live behind `Arc<Mutex<…>>`, so cloning a propagator is cheap
/// and the clones *share* cached transfer functions — workers propagating
/// different depth planes of the same frame reuse one table per distance.
///
/// # Examples
///
/// ```
/// use holoar_optics::{Field, OpticalConfig, Propagator};
///
/// let cfg = OpticalConfig::default();
/// let mut field = Field::zeros(32, 32, cfg);
/// field.set(16, 16, holoar_fft::Complex64::ONE);
///
/// let mut prop = Propagator::new();
/// let away = prop.propagate(&field, 0.002);
/// let back = prop.propagate(&away, -0.002);
/// // Forward then backward recovers the point source.
/// assert!(back.intensity_at(16, 16) > 0.9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Propagator {
    ffts: FftMap<f64>,
    /// Transfer functions, `Arc`-shared so batch workers borrow them
    /// without copying.
    transfer: TransferMap<Complex64>,
    /// f32 twins of the two caches above, populated only when the
    /// propagator runs at [`Precision::F32`]. The f32 transfer tables are
    /// narrowed from the cached f64 tables, not rebuilt, so both precisions
    /// share one trigonometry pass per distance.
    ffts32: FftMap<f32>,
    transfer32: TransferMap<Complex32>,
    par: Parallelism,
    precision: Precision,
}

impl Propagator {
    /// Creates an empty serial propagator (at the default `f64` reference
    /// precision).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty propagator that fans FFT passes and batch
    /// propagation out over `par`.
    pub fn with_parallelism(par: Parallelism) -> Self {
        Propagator { par, ..Self::default() }
    }

    /// Creates a propagator bound to an [`ExecutionContext`]: it fans out
    /// over the context's worker pool, runs its hot loops at the context's
    /// [`Precision`], and shares FFT-plan and transfer-function caches with
    /// every other propagator built from the same context. This is how the
    /// serving layer lets all sessions multiplexed onto one device reuse
    /// each other's transfer functions.
    pub fn with_context(ctx: &ExecutionContext) -> Self {
        let caches = ctx.shared("optics.propagator.caches", PropagatorCaches::default);
        Propagator {
            ffts: Arc::clone(&caches.ffts),
            transfer: Arc::clone(&caches.transfer),
            ffts32: Arc::clone(&caches.ffts32),
            transfer32: Arc::clone(&caches.transfer32),
            par: ctx.parallelism().clone(),
            precision: ctx.precision(),
        }
    }

    /// This propagator with its hot-loop precision overridden (caches and
    /// pool are shared with `self`). Fields stay `f64` at the boundary
    /// either way; [`Precision::F32`] narrows the samples and transfer
    /// table around the transform and widens the result back.
    pub fn with_precision(&self, precision: Precision) -> Self {
        Propagator { precision, ..self.clone() }
    }

    /// The pool handle this propagator fans out over.
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    /// The scalar precision propagation hot loops run at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Propagates `field` by a signed distance `z` (meters). Positive `z`
    /// moves away from the source plane; negative `z` back-propagates.
    ///
    /// Propagation is unitary up to the evanescent cutoff: for fields whose
    /// spectrum stays within the propagating band, energy is conserved.
    ///
    /// # Panics
    ///
    /// Panics if `z` is not finite.
    pub fn propagate(&mut self, field: &Field, z: f64) -> Field {
        assert!(z.is_finite(), "propagation distance must be finite");
        if z == 0.0 {
            return field.clone();
        }
        let _span = holoar_telemetry::span_cat("optics.propagate", "optics");
        match self.precision {
            Precision::F64 => {
                let fft = self.fft_for(field.rows(), field.cols());
                let h = self.transfer_for(field.rows(), field.cols(), field.config(), z);
                apply_transfer(field, &fft, &h)
            }
            Precision::F32 => {
                let fft = self.fft32_for(field.rows(), field.cols());
                let h = self.transfer32_for(field.rows(), field.cols(), field.config(), z);
                apply_transfer32(field, &fft, &h)
            }
        }
    }

    /// Propagates one field to many distances concurrently, returning the
    /// results in `zs` order.
    ///
    /// Every output is bit-identical to the corresponding serial
    /// [`Propagator::propagate`] call: transfer functions are built (and
    /// cached) in `zs` order up front, and each plane then runs the exact
    /// serial propagation code on its own worker.
    ///
    /// # Panics
    ///
    /// Panics if any distance is not finite.
    pub fn propagate_batch(&mut self, field: &Field, zs: &[f64]) -> Vec<Field> {
        let _span = holoar_telemetry::span_cat("optics.propagate_batch", "optics");
        let (rows, cols) = (field.rows(), field.cols());
        // Warm both caches serially so insertion order (and therefore
        // `cached_transfer_count`) matches the serial loop exactly.
        let jobs: Vec<PreparedPlane> = zs
            .iter()
            .map(|&z| self.prepare(rows, cols, field.config(), z))
            .collect();
        self.par.map(&jobs, |prepared| match prepared {
            PreparedPlane::Identity => field.clone(),
            PreparedPlane::Wide(fft, h) => apply_transfer(field, fft, h),
            PreparedPlane::Narrow(fft, h) => apply_transfer32(field, fft, h),
        })
    }

    /// Propagates independent `(field, z)` pairs concurrently, returning
    /// results in input order. Shapes may differ between pairs.
    ///
    /// Bit-identical to the serial loop, with the same cache-warming
    /// guarantee as [`Propagator::propagate_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `fields` and `zs` differ in length, or any distance is not
    /// finite.
    pub fn propagate_planes(&mut self, fields: &[Field], zs: &[f64]) -> Vec<Field> {
        assert_eq!(fields.len(), zs.len(), "one distance per field");
        let _span = holoar_telemetry::span_cat("optics.propagate_planes", "optics");
        let jobs: Vec<(&Field, PreparedPlane)> = fields
            .iter()
            .zip(zs)
            .map(|(field, &z)| {
                (field, self.prepare(field.rows(), field.cols(), field.config(), z))
            })
            .collect();
        self.par.map(&jobs, |(field, prepared)| match prepared {
            PreparedPlane::Identity => (*field).clone(),
            PreparedPlane::Wide(fft, h) => apply_transfer(field, fft, h),
            PreparedPlane::Narrow(fft, h) => apply_transfer32(field, fft, h),
        })
    }

    /// Resolves one plane's propagation inputs at this propagator's
    /// precision, warming the plan and transfer caches serially (so cache
    /// insertion order matches the serial loop exactly). The returned FFT
    /// twin is serial: batch entry points parallelize *across* planes.
    ///
    /// # Panics
    ///
    /// Panics if `z` is not finite.
    fn prepare(&self, rows: usize, cols: usize, cfg: OpticalConfig, z: f64) -> PreparedPlane {
        assert!(z.is_finite(), "propagation distance must be finite");
        if z == 0.0 {
            return PreparedPlane::Identity;
        }
        match self.precision {
            Precision::F64 => PreparedPlane::Wide(
                self.fft_for(rows, cols).serial_equivalent(),
                self.transfer_for(rows, cols, cfg, z),
            ),
            Precision::F32 => PreparedPlane::Narrow(
                self.fft32_for(rows, cols).serial_equivalent(),
                self.transfer32_for(rows, cols, cfg, z),
            ),
        }
    }

    /// `HP2DP` from Algorithm 1: hologram plane → the depth plane at distance
    /// `z` in front of it.
    ///
    /// # Panics
    ///
    /// Panics if `z` is not finite.
    pub fn hp2dp(&mut self, hologram: &Field, z: f64) -> Field {
        self.propagate(hologram, z)
    }

    /// `DP2HP` from Algorithm 1: the depth plane at distance `z` → the
    /// hologram plane.
    ///
    /// # Panics
    ///
    /// Panics if `z` is not finite.
    pub fn dp2hp(&mut self, plane: &Field, z: f64) -> Field {
        self.propagate(plane, -z)
    }

    /// Number of cached transfer functions (exposed for cache-behaviour
    /// tests and capacity planning). Shared across clones.
    pub fn cached_transfer_count(&self) -> usize {
        holoar_fft::lock_unpoisoned(&self.transfer).len()
    }

    /// The cached (or newly planned) FFT for a shape.
    fn fft_for(&self, rows: usize, cols: usize) -> Fft2d {
        match holoar_fft::lock_unpoisoned(&self.ffts).entry((rows, cols)) {
            std::collections::hash_map::Entry::Occupied(hit) => {
                holoar_telemetry::counter_add("optics.fft_cache.hit", 1);
                hit.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(miss) => {
                holoar_telemetry::counter_add("optics.fft_cache.miss", 1);
                miss.insert(Fft2d::with_parallelism(rows, cols, self.par.clone())).clone()
            }
        }
    }

    /// The cached (or newly planned) f32 FFT for a shape.
    fn fft32_for(&self, rows: usize, cols: usize) -> Fft2d<f32> {
        match holoar_fft::lock_unpoisoned(&self.ffts32).entry((rows, cols)) {
            std::collections::hash_map::Entry::Occupied(hit) => {
                holoar_telemetry::counter_add("optics.fft_cache.hit", 1);
                hit.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(miss) => {
                holoar_telemetry::counter_add("optics.fft_cache.miss", 1);
                miss.insert(Fft2d::with_parallelism(rows, cols, self.par.clone())).clone()
            }
        }
    }

    /// The cached (or newly built) transfer function for a shape/distance.
    fn transfer_for(
        &self,
        rows: usize,
        cols: usize,
        cfg: OpticalConfig,
        z: f64,
    ) -> Arc<Vec<Complex64>> {
        let key =
            (rows, cols, z.to_bits(), cfg.wavelength.to_bits(), cfg.pitch.to_bits());
        match holoar_fft::lock_unpoisoned(&self.transfer).entry(key) {
            std::collections::hash_map::Entry::Occupied(hit) => {
                holoar_telemetry::counter_add("optics.transfer_cache.hit", 1);
                hit.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(miss) => {
                holoar_telemetry::counter_add("optics.transfer_cache.miss", 1);
                let _span = holoar_telemetry::span_cat("optics.transfer.build", "optics");
                miss.insert(Arc::new(transfer_function(
                    rows,
                    cols,
                    cfg.pitch,
                    cfg.wavelength,
                    z,
                )))
                .clone()
            }
        }
    }

    /// The cached f32 transfer function for a shape/distance, narrowed from
    /// the cached f64 table (one trigonometry pass serves both precisions).
    fn transfer32_for(
        &self,
        rows: usize,
        cols: usize,
        cfg: OpticalConfig,
        z: f64,
    ) -> Arc<Vec<Complex32>> {
        let key =
            (rows, cols, z.to_bits(), cfg.wavelength.to_bits(), cfg.pitch.to_bits());
        if let Some(hit) = holoar_fft::lock_unpoisoned(&self.transfer32).get(&key) {
            holoar_telemetry::counter_add("optics.transfer_cache.hit", 1);
            return Arc::clone(hit);
        }
        holoar_telemetry::counter_add("optics.transfer_cache.miss", 1);
        // Narrow outside the lock: transfer_for takes the f64 map's lock.
        let wide = self.transfer_for(rows, cols, cfg, z);
        let narrow = Arc::new(wide.iter().map(|t| t.to_c32()).collect::<Vec<Complex32>>());
        holoar_fft::lock_unpoisoned(&self.transfer32)
            .entry(key)
            .or_insert(narrow)
            .clone()
    }
}

/// The core propagation step: FFT → multiply by `H` → inverse FFT.
fn apply_transfer(field: &Field, fft: &Fft2d, h: &[Complex64]) -> Field {
    let mut spectrum = field.samples().to_vec();
    fft.forward(&mut spectrum);
    for (s, t) in spectrum.iter_mut().zip(h) {
        *s *= *t;
    }
    fft.inverse(&mut spectrum);
    Field::from_data(field.rows(), field.cols(), field.config(), spectrum)
}

/// [`apply_transfer`] with the transform and multiply in f32: samples narrow
/// on the way in and widen on the way out, so the [`Field`] boundary stays
/// `f64`. Purely real inputs keep exact zero imaginary parts under
/// narrowing, so the real-input FFT fast path still fires.
fn apply_transfer32(field: &Field, fft: &Fft2d<f32>, h: &[Complex32]) -> Field {
    let mut spectrum: Vec<Complex32> =
        field.samples().iter().map(|s| s.to_c32()).collect();
    fft.forward(&mut spectrum);
    for (s, t) in spectrum.iter_mut().zip(h) {
        *s *= *t;
    }
    fft.inverse(&mut spectrum);
    let wide: Vec<Complex64> = spectrum.iter().map(|s| s.to_c64()).collect();
    Field::from_data(field.rows(), field.cols(), field.config(), wide)
}

/// Builds the (band-limited) angular-spectrum transfer function for a
/// `rows × cols` grid in FFT (DC-at-corner) index order.
fn transfer_function(rows: usize, cols: usize, pitch: f64, wavelength: f64, z: f64) -> Vec<Complex64> {
    let k = 2.0 * std::f64::consts::PI / wavelength;
    let dfx = 1.0 / (cols as f64 * pitch);
    let dfy = 1.0 / (rows as f64 * pitch);
    // Band limit after Matsushima & Shimobaba (2009): frequencies beyond
    // `1 / (λ·sqrt((2·Δf·z)² + 1))` alias for the given propagation distance
    // and aperture, so the transfer function is zeroed there.
    let fx_max = 1.0 / (wavelength * ((2.0 * dfx * z.abs()).powi(2) + 1.0).sqrt());
    let fy_max = 1.0 / (wavelength * ((2.0 * dfy * z.abs()).powi(2) + 1.0).sqrt());

    let mut h = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        // FFT bin → signed frequency.
        let fr = if r <= rows / 2 { r as f64 } else { r as f64 - rows as f64 } * dfy;
        for c in 0..cols {
            let fc = if c <= cols / 2 { c as f64 } else { c as f64 - cols as f64 } * dfx;
            let s = 1.0 - (wavelength * fc).powi(2) - (wavelength * fr).powi(2);
            let within_band = fc.abs() <= fx_max && fr.abs() <= fy_max;
            if s >= 0.0 && within_band {
                h.push(Complex64::cis(k * z * s.sqrt()));
            } else if s < 0.0 {
                // Evanescent: decays as exp(-k|z|·sqrt(-s)).
                let decay = (-k * z.abs() * (-s).sqrt()).exp();
                h.push(Complex64::from(decay));
            } else {
                h.push(Complex64::ZERO);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::OpticalConfig;

    fn point_source(n: usize) -> Field {
        let mut f = Field::zeros(n, n, OpticalConfig::default());
        f.set(n / 2, n / 2, Complex64::ONE);
        f
    }

    #[test]
    fn zero_distance_is_identity() {
        let f = point_source(16);
        let mut p = Propagator::new();
        let out = p.propagate(&f, 0.0);
        assert_eq!(out.samples(), f.samples());
    }

    #[test]
    fn forward_backward_roundtrip() {
        let f = point_source(32);
        let mut p = Propagator::new();
        let mid = p.hp2dp(&f, 0.003);
        let out = p.dp2hp(&mid, 0.003);
        // Peak should return to the center with most of its energy.
        assert!(out.intensity_at(16, 16) > 0.9);
        let off_peak: f64 = out
            .intensity()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 16 * 32 + 16)
            .map(|(_, v)| v)
            .sum();
        assert!(off_peak < 0.1);
    }

    #[test]
    fn energy_approximately_conserved_for_propagating_field() {
        // A smooth Gaussian blob has negligible evanescent content.
        let n = 64;
        let cfg = OpticalConfig::default();
        let mut f = Field::zeros(n, n, cfg);
        for r in 0..n {
            for c in 0..n {
                let dr = r as f64 - n as f64 / 2.0;
                let dc = c as f64 - n as f64 / 2.0;
                let a = (-(dr * dr + dc * dc) / 50.0).exp();
                f.set(r, c, Complex64::new(a, 0.0));
            }
        }
        let e0 = f.total_energy();
        let out = Propagator::new().propagate(&f, 0.001);
        let e1 = out.total_energy();
        assert!((e0 - e1).abs() / e0 < 0.02, "e0={e0} e1={e1}");
    }

    #[test]
    fn point_source_spreads_with_distance() {
        let f = point_source(64);
        let mut p = Propagator::new();
        let near = p.propagate(&f, 0.0005);
        let far = p.propagate(&f, 0.005);
        // Farther propagation ⇒ lower peak intensity (energy spread wider).
        let peak = |fld: &Field| fld.intensity().iter().cloned().fold(0.0, f64::max);
        assert!(peak(&far) < peak(&near));
    }

    #[test]
    fn propagation_is_reciprocal() {
        // propagate(+z) then propagate(-z) equals identity for band-limited
        // content; check sample-wise on a Gaussian.
        let n = 32;
        let cfg = OpticalConfig::default();
        let mut f = Field::zeros(n, n, cfg);
        for r in 0..n {
            for c in 0..n {
                let dr = r as f64 - 16.0;
                let dc = c as f64 - 16.0;
                f.set(r, c, Complex64::new((-(dr * dr + dc * dc) / 30.0).exp(), 0.0));
            }
        }
        let mut p = Propagator::new();
        let fwd = p.propagate(&f, 0.002);
        let back = p.propagate(&fwd, -0.002);
        for (a, b) in back.samples().iter().zip(f.samples()) {
            assert!((*a - *b).norm() < 0.05);
        }
    }

    #[test]
    fn transfer_functions_are_cached() {
        let f = point_source(16);
        let mut p = Propagator::new();
        p.propagate(&f, 0.001);
        p.propagate(&f, 0.001);
        assert_eq!(p.cached_transfer_count(), 1);
        p.propagate(&f, 0.002);
        assert_eq!(p.cached_transfer_count(), 2);
    }

    #[test]
    fn context_propagators_share_caches() {
        let ctx = ExecutionContext::serial();
        let f = point_source(16);
        let mut a = Propagator::with_context(&ctx);
        let mut b = Propagator::with_context(&ctx);
        a.propagate(&f, 0.001);
        assert_eq!(b.cached_transfer_count(), 1);
        b.propagate(&f, 0.001); // hit in the shared cache, not a rebuild
        assert_eq!(a.cached_transfer_count(), 1);
        // A different context gets its own caches.
        let other = Propagator::with_context(&ExecutionContext::serial());
        assert_eq!(other.cached_transfer_count(), 0);
    }

    #[test]
    fn clones_share_the_transfer_cache() {
        let f = point_source(16);
        let mut a = Propagator::new();
        let mut b = a.clone();
        a.propagate(&f, 0.001);
        assert_eq!(b.cached_transfer_count(), 1);
        b.propagate(&f, 0.001); // hit, not a rebuild
        assert_eq!(a.cached_transfer_count(), 1);
    }

    #[test]
    fn batch_matches_serial_bit_for_bit() {
        let f = point_source(24);
        let zs = [0.001, 0.0, -0.002, 0.003, 0.001];
        let serial: Vec<Field> = {
            let mut p = Propagator::new();
            zs.iter().map(|&z| p.propagate(&f, z)).collect()
        };
        for workers in [1usize, 2, 7] {
            let mut p = Propagator::with_parallelism(Parallelism::new(workers));
            let batch = p.propagate_batch(&f, &zs);
            assert_eq!(batch.len(), serial.len());
            for (i, (a, b)) in batch.iter().zip(&serial).enumerate() {
                assert_eq!(a.samples(), b.samples(), "plane {i} workers {workers}");
            }
            assert_eq!(p.cached_transfer_count(), 3, "0.001 and -0.002 and 0.003");
        }
    }

    #[test]
    fn propagate_planes_handles_mixed_shapes() {
        let small = point_source(8);
        let large = point_source(16);
        let fields = vec![small.clone(), large.clone(), small.clone()];
        let zs = [0.001, 0.002, 0.0];
        let mut p = Propagator::with_parallelism(Parallelism::new(2));
        let out = p.propagate_planes(&fields, &zs);
        let mut serial = Propagator::new();
        assert_eq!(out[0].samples(), serial.propagate(&small, 0.001).samples());
        assert_eq!(out[1].samples(), serial.propagate(&large, 0.002).samples());
        assert_eq!(out[2].samples(), small.samples());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_distance_panics() {
        Propagator::new().propagate(&point_source(8), f64::NAN);
    }

    fn gaussian(n: usize) -> Field {
        let cfg = OpticalConfig::default();
        let mut f = Field::zeros(n, n, cfg);
        for r in 0..n {
            for c in 0..n {
                let dr = r as f64 - n as f64 / 2.0;
                let dc = c as f64 - n as f64 / 2.0;
                f.set(r, c, Complex64::new((-(dr * dr + dc * dc) / 40.0).exp(), 0.0));
            }
        }
        f
    }

    #[test]
    fn f32_precision_tracks_f64_within_tolerance() {
        let f = gaussian(32);
        let mut wide = Propagator::new();
        let mut narrow = wide.with_precision(Precision::F32);
        assert_eq!(narrow.precision(), Precision::F32);
        let a = wide.propagate(&f, 0.002);
        let b = narrow.propagate(&f, 0.002);
        let scale = f.total_energy().sqrt().max(1.0);
        for (x, y) in a.samples().iter().zip(b.samples()) {
            assert!((*x - *y).norm() < 1e-3 * scale, "{x} vs {y}");
        }
        // Precision is a compute policy, not a physics change: energy still
        // approximately conserved through the narrow path.
        assert!((a.total_energy() - b.total_energy()).abs() / a.total_energy() < 1e-3);
    }

    #[test]
    fn context_precision_reaches_the_propagator() {
        let ctx = holoar_fft::ExecutionContext::builder().precision(Precision::F32).build();
        let p = Propagator::with_context(&ctx);
        assert_eq!(p.precision(), Precision::F32);
        assert_eq!(Propagator::new().precision(), Precision::F64);
    }

    #[test]
    fn f32_batches_are_bit_identical_across_worker_counts() {
        let f = gaussian(24);
        let zs = [0.001, 0.0, -0.002, 0.003];
        let serial: Vec<Field> = {
            let mut p = Propagator::new().with_precision(Precision::F32);
            zs.iter().map(|&z| p.propagate(&f, z)).collect()
        };
        for workers in [2usize, 7] {
            let mut p = Propagator::with_parallelism(Parallelism::new(workers))
                .with_precision(Precision::F32);
            let batch = p.propagate_batch(&f, &zs);
            for (i, (a, b)) in batch.iter().zip(&serial).enumerate() {
                assert_eq!(a.samples(), b.samples(), "plane {i} workers {workers}");
            }
        }
    }

    #[test]
    fn f32_transfer_tables_narrow_the_cached_f64_tables() {
        let f = gaussian(16);
        let mut p = Propagator::new().with_precision(Precision::F32);
        p.propagate(&f, 0.001);
        // The narrow path warms the wide cache too (tables are narrowed,
        // not rebuilt), so the shared count reflects one distance.
        assert_eq!(p.cached_transfer_count(), 1);
        let mut wide = p.with_precision(Precision::F64);
        wide.propagate(&f, 0.001); // hit, not a rebuild
        assert_eq!(p.cached_transfer_count(), 1);
    }

    #[test]
    fn dc_component_phase_advances_with_z() {
        // A constant field is pure DC: propagation multiplies by e^{ikz}.
        let n = 8;
        let cfg = OpticalConfig::default();
        let f = Field::from_amplitude(n, n, cfg, &vec![1.0; n * n]);
        let z = 1e-6;
        let out = Propagator::new().propagate(&f, z);
        let want = Complex64::cis(cfg.wavenumber() * z);
        for s in out.samples() {
            assert!((*s - want).norm() < 1e-9);
        }
    }
}
