//! Procedural virtual objects — the OpenHolo depthmap database substitute.
//!
//! The paper picks six virtual holograms from the OpenHolo depthmap DB
//! (Sniper, Rock, Tree, Planet, Rabbit, Dice) and maps them randomly onto
//! the real objects in each video (§5.2). The database is not redistributable
//! here, so this module synthesizes deterministic depthmaps with the same six
//! identities. What matters to every experiment is preserved: each object has
//! a recognizable amplitude silhouette and a genuine *depth extent*, so that
//! reducing the depth-plane count visibly degrades (and fewer planes suffice
//! for smaller/farther instances).

use crate::depthmap::DepthMap;

/// The six virtual hologram identities used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VirtualObject {
    /// A slanted rifle silhouette with a long thin barrel.
    Sniper,
    /// An irregular blob with hash-noise relief.
    Rock,
    /// A conical canopy over a trunk, depth increasing toward the top.
    Tree,
    /// A limb-darkened sphere; smooth quadratic depth relief.
    Planet,
    /// Body + head + ears built from ellipses.
    Rabbit,
    /// A rounded square with dark pips, slanted in depth.
    Dice,
}

impl VirtualObject {
    /// All six objects in a fixed order.
    pub const ALL: [VirtualObject; 6] = [
        VirtualObject::Sniper,
        VirtualObject::Rock,
        VirtualObject::Tree,
        VirtualObject::Planet,
        VirtualObject::Rabbit,
        VirtualObject::Dice,
    ];

    /// The object's name as it appears in the paper.
    pub fn name(self) -> &'static str {
        match self {
            VirtualObject::Sniper => "Sniper",
            VirtualObject::Rock => "Rock",
            VirtualObject::Tree => "Tree",
            VirtualObject::Planet => "Planet",
            VirtualObject::Rabbit => "Rabbit",
            VirtualObject::Dice => "Dice",
        }
    }

    /// Renders the object into a `rows × cols` depthmap whose lit pixels span
    /// depths `[z_center − depth_extent/2, z_center + depth_extent/2]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_optics::VirtualObject;
    ///
    /// let dm = VirtualObject::Planet.render(64, 64, 0.02, 0.01);
    /// assert!(dm.lit_pixel_count() > 0);
    /// let (near, far) = dm.depth_range().unwrap();
    /// assert!(near >= 0.015 - 1e-9 && far <= 0.025 + 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `depth_extent` is negative/non-finite,
    /// or the nearest depth `z_center − depth_extent/2` is not positive.
    pub fn render(self, rows: usize, cols: usize, z_center: f64, depth_extent: f64) -> DepthMap {
        assert!(rows > 0 && cols > 0, "object dimensions must be non-zero");
        assert!(
            depth_extent >= 0.0 && depth_extent.is_finite(),
            "depth extent must be non-negative and finite"
        );
        let z_near = z_center - depth_extent / 2.0;
        assert!(z_near > 0.0, "object must sit strictly in front of the hologram plane");

        let mut amp = vec![0.0; rows * cols];
        let mut rel = vec![0.0; rows * cols]; // relative depth in [0, 1]
        for r in 0..rows {
            for c in 0..cols {
                // Normalized coordinates in [-1, 1] with (0,0) at the center.
                let y = 2.0 * (r as f64 + 0.5) / rows as f64 - 1.0;
                let x = 2.0 * (c as f64 + 0.5) / cols as f64 - 1.0;
                if let Some((a, d)) = self.sample(x, y) {
                    amp[r * cols + c] = a;
                    rel[r * cols + c] = d.clamp(0.0, 1.0);
                }
            }
        }
        let depth: Vec<f64> =
            rel.iter().zip(&amp).map(|(&d, &a)| if a > 0.0 { z_near + d * depth_extent } else { z_center }).collect();
        DepthMap::new(rows, cols, amp, depth).expect("procedural object produces a valid depthmap")
    }

    /// Samples amplitude and relative depth at normalized coordinates;
    /// `None` outside the silhouette.
    fn sample(self, x: f64, y: f64) -> Option<(f64, f64)> {
        match self {
            VirtualObject::Planet => {
                let r2 = x * x + y * y;
                if r2 <= 0.64 {
                    // Limb darkening; depth = spherical cap (near at center).
                    let h = (0.64 - r2).sqrt() / 0.8;
                    let mut a = (1.0 - 0.5 * r2 / 0.64).max(0.1);
                    // An off-center crater breaks the radial symmetry so
                    // different pupil positions genuinely see different
                    // views (Fig 9a).
                    if ((x - 0.3).powi(2) + (y + 0.2).powi(2)).sqrt() < 0.18 {
                        a *= 0.35;
                    }
                    Some((a, 1.0 - h))
                } else {
                    None
                }
            }
            VirtualObject::Dice => {
                if x.abs() <= 0.7 && y.abs() <= 0.7 {
                    // Pips at the five-face layout carve dark spots.
                    let pips = [(-0.35, -0.35), (0.35, -0.35), (0.0, 0.0), (-0.35, 0.35), (0.35, 0.35)];
                    let in_pip = pips
                        .iter()
                        .any(|&(px, py)| ((x - px).powi(2) + (y - py).powi(2)).sqrt() < 0.12);
                    let a = if in_pip { 0.15 } else { 0.9 };
                    // Slanted in depth along the diagonal.
                    Some((a, (x + y + 1.4) / 2.8))
                } else {
                    None
                }
            }
            VirtualObject::Tree => {
                let canopy = y < 0.35 && y > -0.85 && x.abs() < 0.55 * (y + 0.9) / 1.25;
                let trunk = (0.35..=0.9).contains(&y) && x.abs() < 0.1;
                if canopy {
                    // Depth recedes toward the top of the canopy.
                    Some((0.8, (y + 0.85) / 1.2))
                } else if trunk {
                    Some((0.5, 0.95))
                } else {
                    None
                }
            }
            VirtualObject::Rock => {
                // A lumpy ellipse: perturb the radius with deterministic hash
                // noise by angle.
                let ang = y.atan2(x);
                let n = hash_noise((ang * 4.0).floor() as i64);
                let radius = 0.6 + 0.18 * n;
                let rr = (x * x / (radius * radius) + y * y / (0.7 * radius * 0.7 * radius)).sqrt();
                if rr <= 1.0 {
                    let tex = 0.6 + 0.4 * hash_noise(((x * 7.0).floor() as i64) ^ (((y * 7.0).floor() as i64) << 8));
                    Some((tex, 0.5 + 0.5 * hash_noise((x * 5.0 + y * 3.0).floor() as i64)))
                } else {
                    None
                }
            }
            VirtualObject::Rabbit => {
                let body = (x / 0.45).powi(2) + ((y - 0.3) / 0.45).powi(2) <= 1.0;
                let head = (x / 0.28).powi(2) + ((y + 0.25) / 0.28).powi(2) <= 1.0;
                let ear_l = ((x + 0.15) / 0.08).powi(2) + ((y + 0.7) / 0.28).powi(2) <= 1.0;
                let ear_r = ((x - 0.15) / 0.08).powi(2) + ((y + 0.7) / 0.28).powi(2) <= 1.0;
                if body {
                    Some((0.85, 0.6 + 0.4 * (x * x + (y - 0.3) * (y - 0.3))))
                } else if head {
                    Some((0.9, 0.3))
                } else if ear_l || ear_r {
                    Some((0.7, 0.1))
                } else {
                    None
                }
            }
            VirtualObject::Sniper => {
                let body = y.abs() < 0.12 && x > -0.9 && x < 0.3;
                let barrel = y.abs() < 0.05 && (0.3..0.95).contains(&x);
                let stock = y > 0.1 && y < 0.45 && x > -0.9 && x < -0.55;
                let scope = y < -0.12 && y > -0.3 && x > -0.35 && x < 0.1;
                if body || barrel || stock || scope {
                    // Depth runs along the weapon length.
                    Some((0.8, (x + 0.9) / 1.85))
                } else {
                    None
                }
            }
        }
    }
}

/// Deterministic pseudo-noise in `[0, 1]` from an integer key (splitmix-style
/// avalanche), so procedural textures never depend on an RNG.
fn hash_noise(key: i64) -> f64 {
    let mut z = (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_objects_render_nonempty() {
        for obj in VirtualObject::ALL {
            let dm = obj.render(48, 48, 0.03, 0.01);
            assert!(dm.lit_pixel_count() > 20, "{} too sparse", obj.name());
        }
    }

    #[test]
    fn depth_spans_requested_extent() {
        for obj in VirtualObject::ALL {
            let dm = obj.render(64, 64, 0.05, 0.02);
            let (near, far) = dm.depth_range().unwrap();
            assert!(near >= 0.04 - 1e-9, "{}: near {near}", obj.name());
            assert!(far <= 0.06 + 1e-9, "{}: far {far}", obj.name());
            // Real 3-D content: depth extent actually used.
            assert!(far - near > 0.005, "{}: flat object", obj.name());
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = VirtualObject::Rock.render(32, 32, 0.02, 0.01);
        let b = VirtualObject::Rock.render(32, 32, 0.02, 0.01);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_extent_is_flat() {
        let dm = VirtualObject::Planet.render(32, 32, 0.02, 0.0);
        let (near, far) = dm.depth_range().unwrap();
        assert_eq!(near, far);
    }

    #[test]
    #[should_panic(expected = "in front of the hologram plane")]
    fn object_behind_hologram_panics() {
        VirtualObject::Dice.render(16, 16, 0.001, 0.01);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = VirtualObject::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names, ["Sniper", "Rock", "Tree", "Planet", "Rabbit", "Dice"]);
    }

    #[test]
    fn objects_differ_from_each_other() {
        let planet = VirtualObject::Planet.render(32, 32, 0.02, 0.01);
        let dice = VirtualObject::Dice.render(32, 32, 0.02, 0.01);
        assert_ne!(planet.amplitude(), dice.amplitude());
    }

    #[test]
    fn hash_noise_is_in_unit_interval() {
        for k in -100..100 {
            let v = hash_noise(k);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
