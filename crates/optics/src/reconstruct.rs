//! Numerical hologram reconstruction — the paper's quality-evaluation path.
//!
//! Lacking a physical optical display, the paper "numerically generate\[s\]
//! the reconstructed holographic images on top of the OpenHolo library"
//! (§5.4, Fig 9). This module is that substitute: it propagates a hologram to
//! a chosen focal distance, optionally through an off-center pupil aperture,
//! and returns the intensity image a viewer would see.

use holoar_fft::{Complex64, Fft2d};

use crate::field::Field;
use crate::propagate::Propagator;

/// Reconstructs the intensity image at focal distance `z` (meters) in front
/// of the hologram plane.
///
/// # Examples
///
/// ```
/// use holoar_optics::{reconstruct, Field, OpticalConfig, Propagator};
///
/// let mut holo = Field::zeros(16, 16, OpticalConfig::default());
/// holo.set(8, 8, holoar_fft::Complex64::ONE);
/// let mut prop = Propagator::new();
/// let img = reconstruct::reconstruct_intensity(&holo, 0.002, &mut prop);
/// assert_eq!(img.len(), 256);
/// ```
///
/// # Panics
///
/// Panics if `z` is not finite.
pub fn reconstruct_intensity(hologram: &Field, z: f64, prop: &mut Propagator) -> Vec<f64> {
    prop.propagate(hologram, z).intensity()
}

/// Reconstructs intensity images at each focal distance in `distances`
/// (Fig 9b: "viewing the W-CGH from different focal distances").
///
/// # Panics
///
/// Panics if any distance is not finite.
pub fn focal_stack(hologram: &Field, distances: &[f64], prop: &mut Propagator) -> Vec<Vec<f64>> {
    distances.iter().map(|&z| reconstruct_intensity(hologram, z, prop)).collect()
}

/// Reconstructs an *incoherent* focal stack from a sliced depth-plane
/// decomposition: at each focal distance the per-plane contributions are
/// summed in intensity rather than amplitude.
///
/// Layered-display evaluations conventionally compare incoherent stacks —
/// temporal multiplexing and the eye's integration wash out inter-plane
/// interference — which makes quality differences track the depth
/// quantization rather than speckle reshuffling.
///
/// # Panics
///
/// Panics if the stack is empty or any distance is not finite.
pub fn incoherent_focal_stack(
    stack: &crate::depthmap::PlaneStack,
    distances: &[f64],
    prop: &mut Propagator,
) -> Vec<Vec<f64>> {
    assert!(!stack.is_empty(), "incoherent stack requires at least one plane");
    let rows = stack.plane(0).field.rows();
    let cols = stack.plane(0).field.cols();
    let mut images = vec![vec![0.0; rows * cols]; distances.len()];
    for plane in stack.iter() {
        if plane.lit_pixels == 0 {
            continue;
        }
        // One batch per plane: the focal distances are independent and fan
        // out over the propagator's pool; the intensity accumulation stays
        // serial in distance order, so the stack is bit-identical to the
        // serial loop for every worker count.
        let shifted: Vec<f64> = distances.iter().map(|&z| z - plane.z).collect();
        let reconstructions = prop.propagate_batch(&plane.field, &shifted);
        for (image, u) in images.iter_mut().zip(&reconstructions) {
            for (acc, s) in image.iter_mut().zip(u.samples()) {
                *acc += s.norm_sqr();
            }
        }
    }
    images
}

/// A viewer's pupil, expressed in the hologram's spatial-frequency plane.
///
/// The eye collects only the plane-wave components entering its pupil; an
/// off-center eye position selects an off-center patch of the hologram's
/// angular spectrum. Offsets are fractions of the Nyquist frequency in
/// `[-1, 1]`; the radius is a fraction of Nyquist in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pupil {
    /// Horizontal spectral offset as a fraction of Nyquist.
    pub offset_x: f64,
    /// Vertical spectral offset as a fraction of Nyquist.
    pub offset_y: f64,
    /// Aperture radius as a fraction of Nyquist.
    pub radius: f64,
}

impl Pupil {
    /// A centered pupil covering `radius` of the spectral half-band.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not in `(0, 1]`.
    pub fn centered(radius: f64) -> Self {
        Self::new(0.0, 0.0, radius)
    }

    /// Creates a pupil at the given spectral offset.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not in `(0, 1]` or either offset is outside
    /// `[-1, 1]`.
    pub fn new(offset_x: f64, offset_y: f64, radius: f64) -> Self {
        assert!(radius > 0.0 && radius <= 1.0, "pupil radius must be in (0, 1]");
        assert!(
            (-1.0..=1.0).contains(&offset_x) && (-1.0..=1.0).contains(&offset_y),
            "pupil offsets must be in [-1, 1]"
        );
        Pupil { offset_x, offset_y, radius }
    }
}

impl Default for Pupil {
    /// A centered pupil passing half of the spectral band.
    fn default() -> Self {
        Pupil::centered(0.5)
    }
}

/// Reconstructs the view through `pupil` focused at distance `z`
/// (Fig 9a: "viewing the W-CGH from different eye-center positions").
///
/// The hologram's angular spectrum is masked by the circular pupil aperture
/// before propagation, so moving the pupil shifts which perspective of the
/// 3-D content is seen.
///
/// # Panics
///
/// Panics if `z` is not finite.
pub fn view_through_pupil(
    hologram: &Field,
    z: f64,
    pupil: Pupil,
    prop: &mut Propagator,
) -> Vec<f64> {
    let (rows, cols) = (hologram.rows(), hologram.cols());
    let fft = Fft2d::new(rows, cols);
    let mut spectrum = hologram.samples().to_vec();
    fft.forward(&mut spectrum);

    // Signed bin coordinates as fractions of Nyquist, DC-at-corner layout.
    let center_r = pupil.offset_y;
    let center_c = pupil.offset_x;
    for r in 0..rows {
        let fr = signed_fraction(r, rows);
        for c in 0..cols {
            let fc = signed_fraction(c, cols);
            let dr = fr - center_r;
            let dc = fc - center_c;
            if (dr * dr + dc * dc).sqrt() > pupil.radius {
                spectrum[r * cols + c] = Complex64::ZERO;
            }
        }
    }
    fft.inverse(&mut spectrum);
    let filtered = Field::from_data(rows, cols, hologram.config(), spectrum);
    reconstruct_intensity(&filtered, z, prop)
}

/// Maps an FFT bin index to a signed frequency as a fraction of Nyquist in
/// `[-1, 1)`.
fn signed_fraction(bin: usize, n: usize) -> f64 {
    let signed = if bin <= n / 2 { bin as f64 } else { bin as f64 - n as f64 };
    signed / (n as f64 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::OpticalConfig;

    fn point_hologram(n: usize, z: f64) -> Field {
        // Hologram of a point source at distance z: back-propagated delta.
        let cfg = OpticalConfig::default();
        let mut obj = Field::zeros(n, n, cfg);
        obj.set(n / 2, n / 2, Complex64::ONE);
        Propagator::new().dp2hp(&obj, z)
    }

    #[test]
    fn reconstruction_refocuses_point() {
        let z = 0.003;
        let holo = point_hologram(32, z);
        let mut prop = Propagator::new();
        let img = reconstruct_intensity(&holo, z, &mut prop);
        let (peak_idx, peak) = img
            .iter()
            .enumerate()
            .fold((0, 0.0), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc });
        assert_eq!(peak_idx, 16 * 32 + 16);
        assert!(peak > 0.5);
    }

    #[test]
    fn focal_stack_returns_one_image_per_distance() {
        let holo = point_hologram(16, 0.002);
        let mut prop = Propagator::new();
        let stack = focal_stack(&holo, &[0.001, 0.002, 0.003], &mut prop);
        assert_eq!(stack.len(), 3);
        assert!(stack.iter().all(|img| img.len() == 256));
        // Sharpest (highest peak) at the true depth.
        let peak = |img: &[f64]| img.iter().cloned().fold(0.0, f64::max);
        assert!(peak(&stack[1]) > peak(&stack[0]));
        assert!(peak(&stack[1]) > peak(&stack[2]));
    }

    #[test]
    fn pupil_validation() {
        assert_eq!(Pupil::default(), Pupil::centered(0.5));
        let p = Pupil::new(0.3, -0.2, 0.4);
        assert_eq!(p.offset_x, 0.3);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn pupil_rejects_zero_radius() {
        Pupil::centered(0.0);
    }

    #[test]
    #[should_panic(expected = "offsets")]
    fn pupil_rejects_out_of_range_offset() {
        Pupil::new(1.5, 0.0, 0.5);
    }

    #[test]
    fn smaller_pupil_passes_less_energy() {
        let holo = point_hologram(32, 0.002);
        let mut prop = Propagator::new();
        let wide: f64 =
            view_through_pupil(&holo, 0.002, Pupil::centered(0.9), &mut prop).iter().sum();
        let narrow: f64 =
            view_through_pupil(&holo, 0.002, Pupil::centered(0.2), &mut prop).iter().sum();
        assert!(narrow < wide);
        assert!(narrow > 0.0);
    }

    #[test]
    fn off_center_pupil_still_sees_point() {
        // A point source radiates into all angles; an off-center pupil
        // still collects some energy.
        let holo = point_hologram(32, 0.002);
        let mut prop = Propagator::new();
        let img = view_through_pupil(&holo, 0.002, Pupil::new(0.4, 0.0, 0.3), &mut prop);
        assert!(img.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn signed_fraction_layout() {
        assert_eq!(signed_fraction(0, 8), 0.0);
        assert_eq!(signed_fraction(4, 8), 1.0);
        assert_eq!(signed_fraction(5, 8), -0.75);
        assert_eq!(signed_fraction(7, 8), -0.25);
    }
}
