//! Phase-only encoding and SLM quantization.
//!
//! Electro-holographic displays (including the HORN-8 target class) drive
//! *phase-type* spatial light modulators: the complex hologram must be
//! encoded as pure phase, at the modulator's finite phase bit depth. This
//! module provides the two standard encodings and the quantizer:
//!
//! * **Phase extraction** — keep `arg(u)`, discard amplitude (what GSW
//!   optimizes for directly);
//! * **Double-phase decomposition** — represent each complex sample exactly
//!   as the average of two unit phasors, interleaved checkerboard-style
//!   across neighbouring pixels (Hsueh & Sawchuk), trading resolution for
//!   amplitude fidelity;
//! * **Quantization** — snap phases to `2^bits` levels.

use holoar_fft::Complex64;

use crate::field::Field;

/// Phase-only encodings supported by the SLM stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseEncoding {
    /// Keep the phase, discard amplitude.
    PhaseExtraction,
    /// Double-phase (two-phasor) decomposition, checkerboard-interleaved.
    DoublePhase,
}

/// Encodes a complex hologram as a phase-only field.
///
/// For [`PhaseEncoding::DoublePhase`], each sample's amplitude (normalized
/// to the field maximum) is written as `cos(δ)` with the two phasors
/// `φ ± δ` distributed on a checkerboard, so a *pair* of neighbouring pixels
/// carries the exact complex value at half the spatial resolution.
///
/// # Examples
///
/// ```
/// use holoar_optics::{phase, Field, OpticalConfig, PhaseEncoding};
///
/// let f = Field::from_amplitude(4, 4, OpticalConfig::default(), &[0.5; 16]);
/// let encoded = phase::encode_phase_only(&f, PhaseEncoding::PhaseExtraction);
/// for s in encoded.samples() {
///     assert!((s.norm() - 1.0).abs() < 1e-12 || s.norm() == 0.0);
/// }
/// ```
pub fn encode_phase_only(hologram: &Field, encoding: PhaseEncoding) -> Field {
    match encoding {
        PhaseEncoding::PhaseExtraction => hologram.to_phase_only(),
        PhaseEncoding::DoublePhase => double_phase(hologram),
    }
}

fn double_phase(hologram: &Field) -> Field {
    let peak = hologram
        .samples()
        .iter()
        .map(|s| s.norm())
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = hologram.clone();
    let cols = hologram.cols();
    for (idx, s) in out.samples_mut().iter_mut().enumerate() {
        let a = (s.norm() / peak).clamp(0.0, 1.0);
        let phi = s.arg();
        let delta = a.acos();
        let (r, c) = (idx / cols, idx % cols);
        // Checkerboard: even cells take φ+δ, odd cells φ−δ; a local 2-pixel
        // average reconstructs a·e^{iφ}.
        let theta = if (r + c) % 2 == 0 { phi + delta } else { phi - delta };
        *s = Complex64::cis(theta);
    }
    out
}

/// Quantizes every sample's phase to `bits` bits (`2^bits` uniform levels
/// over `[−π, π)`), preserving amplitude.
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 16.
pub fn quantize_phase(field: &Field, bits: u32) -> Field {
    assert!((1..=16).contains(&bits), "phase depth must be 1..=16 bits");
    let levels = (1u32 << bits) as f64;
    let step = 2.0 * std::f64::consts::PI / levels;
    let mut out = field.clone();
    for s in out.samples_mut() {
        let r = s.norm();
        if r > 0.0 {
            let q = (s.arg() / step).round() * step;
            *s = Complex64::from_polar(r, q);
        }
    }
    out
}

/// RMS phase error (radians, on non-zero samples) between an original field
/// and its encoded/quantized version — the quality gauge for SLM depth
/// decisions.
///
/// # Panics
///
/// Panics if the fields have different shapes.
pub fn rms_phase_error(original: &Field, encoded: &Field) -> f64 {
    assert_eq!(
        (original.rows(), original.cols()),
        (encoded.rows(), encoded.cols()),
        "fields must share a shape"
    );
    let mut sum = 0.0;
    let mut count = 0usize;
    for (a, b) in original.samples().iter().zip(encoded.samples()) {
        if a.norm() > 0.0 && b.norm() > 0.0 {
            let mut d = a.arg() - b.arg();
            // Wrap to (−π, π].
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d <= -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            sum += d * d;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::OpticalConfig;

    fn complex_field(n: usize) -> Field {
        let cfg = OpticalConfig::default();
        let data: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::from_polar(0.2 + 0.8 * ((i * 7) % 11) as f64 / 11.0, i as f64 * 0.37))
            .collect();
        Field::from_data(n, n, cfg, data)
    }

    #[test]
    fn phase_extraction_keeps_phase() {
        let f = complex_field(8);
        let p = encode_phase_only(&f, PhaseEncoding::PhaseExtraction);
        for (a, b) in f.samples().iter().zip(p.samples()) {
            assert!((a.arg() - b.arg()).abs() < 1e-12);
            assert!((b.norm() - 1.0).abs() < 1e-12);
        }
        assert!(rms_phase_error(&f, &p) < 1e-12);
    }

    #[test]
    fn double_phase_is_unit_amplitude() {
        let f = complex_field(8);
        let d = encode_phase_only(&f, PhaseEncoding::DoublePhase);
        for s in d.samples() {
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn double_phase_pair_average_reconstructs_value() {
        // Build a constant complex field so each checkerboard pair sees the
        // same target; the 2-pixel average must recover it (up to the global
        // peak normalization).
        let cfg = OpticalConfig::default();
        let value = Complex64::from_polar(0.6, 1.1);
        let f = Field::from_data(2, 2, cfg, vec![value; 4]);
        let d = double_phase(&f);
        // Pair (0,0)+(0,1): average of the two phasors.
        let avg = (d.at(0, 0) + d.at(0, 1)).scale(0.5);
        // Peak amplitude is 0.6, so normalized amplitude is 1 → δ = 0 →
        // both phasors equal e^{iφ}; average has unit amplitude, phase 1.1.
        assert!((avg.arg() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn double_phase_encodes_amplitude_in_phasor_split() {
        // A field with half-peak amplitude: δ = acos(0.5) = 60°, so the two
        // checkerboard phasors straddle φ by ±60° and average to 0.5·e^{iφ}.
        let cfg = OpticalConfig::default();
        let mut data = vec![Complex64::from_polar(1.0, 0.0); 4];
        data[1] = Complex64::from_polar(0.5, 0.8);
        let f = Field::from_data(2, 2, cfg, data);
        let d = double_phase(&f);
        let expected_delta = 0.5f64.acos();
        // Index 1 is (0,1): odd cell → φ − δ.
        assert!((d.at(0, 1).arg() - (0.8 - expected_delta)).abs() < 1e-12);
    }

    #[test]
    fn quantization_error_shrinks_with_depth() {
        let f = complex_field(16);
        let e2 = rms_phase_error(&f, &quantize_phase(&f, 2));
        let e4 = rms_phase_error(&f, &quantize_phase(&f, 4));
        let e8 = rms_phase_error(&f, &quantize_phase(&f, 8));
        assert!(e2 > e4 && e4 > e8, "{e2} > {e4} > {e8} expected");
        // Uniform quantization RMS ≈ step/sqrt(12).
        let step = 2.0 * std::f64::consts::PI / 16.0;
        assert!((e4 - step / 12f64.sqrt()).abs() < 0.4 * e4, "e4 = {e4}");
    }

    #[test]
    fn quantization_preserves_amplitude() {
        let f = complex_field(8);
        let q = quantize_phase(&f, 3);
        for (a, b) in f.samples().iter().zip(q.samples()) {
            assert!((a.norm() - b.norm()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "phase depth")]
    fn zero_bit_quantization_panics() {
        quantize_phase(&complex_field(4), 0);
    }

    #[test]
    fn rms_error_ignores_dark_pixels() {
        let cfg = OpticalConfig::default();
        let dark = Field::zeros(4, 4, cfg);
        assert_eq!(rms_phase_error(&dark, &dark), 0.0);
    }
}
