//! Wave-optics CGH engine for the HoloAR reproduction — the stand-in for the
//! OpenHolo/CWO++ libraries the paper builds on.
//!
//! The crate covers the full quality path of the paper:
//!
//! * [`Field`]/[`OpticalConfig`] — sampled complex fields with physical
//!   metadata,
//! * [`DepthMap`] → [`PlaneStack`] — depthmap inputs sliced into `M` depth
//!   planes (the approximation knob HoloAR turns),
//! * [`Propagator`] — angular-spectrum propagation (`HP2DP`/`DP2HP`),
//! * [`algorithm1`] — the paper's depthmap hologram algorithm with
//!   work/synchronization instrumentation,
//! * [`fresnel`] — the paraxial (Fresnel) kernel for comparison,
//! * [`gsw`] — adaptive weighted Gerchberg–Saxton phase retrieval,
//! * [`phase`] — phase-only encodings and SLM quantization,
//! * [`reconstruct`] — numerical reconstruction (focal stacks, pupil views),
//! * [`subhologram`] — viewing-window clipping (the Baseline design),
//! * [`scene`] — procedural Sniper/Rock/Tree/Planet/Rabbit/Dice objects.
//!
//! # Examples
//!
//! Generate and reconstruct a hologram of the Planet object:
//!
//! ```
//! use holoar_optics::{algorithm1, reconstruct, ExecutionContext, OpticalConfig, Propagator, VirtualObject};
//!
//! let cfg = OpticalConfig::default();
//! let ctx = ExecutionContext::serial();
//! let depthmap = VirtualObject::Planet.render(32, 32, 0.02, 0.008);
//! let result = algorithm1::depthmap_hologram(&depthmap, 8, cfg, &ctx);
//! let mut prop = Propagator::new();
//! let image = reconstruct::reconstruct_intensity(&result.hologram, 0.02, &mut prop);
//! assert!(image.iter().sum::<f64>() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod algorithm1;
pub mod depthmap;
pub mod field;
pub mod fresnel;
pub mod gsw;
pub mod phase;
pub mod propagate;
pub mod reconstruct;
pub mod scene;
pub mod subhologram;

pub use algorithm1::{depthmap_hologram, hologram_from_planes, HologramResult, HologramStats};
pub use depthmap::{BuildDepthMapError, DepthMap, DepthPlane, PlaneStack};
pub use field::{Field, OpticalConfig};
pub use fresnel::FresnelPropagator;
pub use gsw::{GswConfig, GswResult};
pub use phase::PhaseEncoding;
pub use holoar_fft::{ExecutionContext, ExecutionContextBuilder};
pub use propagate::Propagator;
pub use reconstruct::Pupil;
pub use scene::VirtualObject;
pub use subhologram::Region;
