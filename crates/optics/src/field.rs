//! Sampled complex optical fields.
//!
//! A [`Field`] is a rectangular grid of complex amplitudes with physical
//! sampling metadata ([`OpticalConfig`]): the wavelength of the coherent
//! source and the pixel pitch of the hologram plane / SLM. Every propagation
//! and reconstruction routine in this crate operates on `Field`s.

use holoar_fft::Complex64;

/// Physical sampling parameters shared by a hologram pipeline.
///
/// # Examples
///
/// ```
/// use holoar_optics::OpticalConfig;
///
/// let cfg = OpticalConfig::default(); // 532 nm green laser, 8 µm SLM pitch
/// assert!((cfg.wavelength - 532e-9).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalConfig {
    /// Source wavelength in meters.
    pub wavelength: f64,
    /// Sample (SLM pixel) pitch in meters.
    pub pitch: f64,
}

impl OpticalConfig {
    /// Creates a configuration from a wavelength and pixel pitch, both in
    /// meters.
    ///
    /// # Panics
    ///
    /// Panics if either value is not strictly positive and finite.
    pub fn new(wavelength: f64, pitch: f64) -> Self {
        assert!(
            wavelength > 0.0 && wavelength.is_finite(),
            "wavelength must be positive and finite"
        );
        assert!(pitch > 0.0 && pitch.is_finite(), "pitch must be positive and finite");
        OpticalConfig { wavelength, pitch }
    }

    /// The wavenumber `k = 2π/λ`.
    pub fn wavenumber(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.wavelength
    }
}

impl Default for OpticalConfig {
    /// A 532 nm source sampled at 8 µm — typical for SLM-based CGH setups
    /// like the ones in the OpenHolo examples the paper renders with.
    fn default() -> Self {
        OpticalConfig { wavelength: 532e-9, pitch: 8e-6 }
    }
}

/// A sampled complex field on a `rows × cols` grid.
///
/// # Examples
///
/// ```
/// use holoar_optics::{Field, OpticalConfig};
///
/// let mut f = Field::zeros(4, 4, OpticalConfig::default());
/// f.set(2, 1, holoar_fft::Complex64::ONE);
/// assert_eq!(f.intensity_at(2, 1), 1.0);
/// assert_eq!(f.total_energy(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    rows: usize,
    cols: usize,
    config: OpticalConfig,
    data: Vec<Complex64>,
}

impl Field {
    /// Creates a field of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize, config: OpticalConfig) -> Self {
        assert!(rows > 0 && cols > 0, "field dimensions must be non-zero");
        Field { rows, cols, config, data: vec![Complex64::ZERO; rows * cols] }
    }

    /// Creates a field from an existing buffer of complex samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_data(rows: usize, cols: usize, config: OpticalConfig, data: Vec<Complex64>) -> Self {
        assert!(rows > 0 && cols > 0, "field dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Field { rows, cols, config, data }
    }

    /// Creates a field whose amplitude is given per pixel with zero phase.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude.len() != rows * cols` or either dimension is zero.
    pub fn from_amplitude(rows: usize, cols: usize, config: OpticalConfig, amplitude: &[f64]) -> Self {
        assert_eq!(amplitude.len(), rows * cols, "amplitude length must equal rows*cols");
        let data = amplitude.iter().map(|&a| Complex64::new(a, 0.0)).collect();
        Field::from_data(rows, cols, config, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field contains no samples (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The sampling configuration.
    pub fn config(&self) -> OpticalConfig {
        self.config
    }

    /// Physical width of the sampled aperture in meters.
    pub fn physical_width(&self) -> f64 {
        self.cols as f64 * self.config.pitch
    }

    /// Physical height of the sampled aperture in meters.
    pub fn physical_height(&self) -> f64 {
        self.rows as f64 * self.config.pitch
    }

    /// The sample at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> Complex64 {
        assert!(row < self.rows && col < self.cols, "field index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the sample at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Complex64) {
        assert!(row < self.rows && col < self.cols, "field index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow the raw row-major sample buffer.
    pub fn samples(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutably borrow the raw row-major sample buffer.
    pub fn samples_mut(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the field, returning the raw sample buffer.
    pub fn into_samples(self) -> Vec<Complex64> {
        self.data
    }

    /// Intensity `|u|²` at one sample.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn intensity_at(&self, row: usize, col: usize) -> f64 {
        self.at(row, col).norm_sqr()
    }

    /// The per-pixel intensity image `|u|²`.
    pub fn intensity(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sqr()).collect()
    }

    /// The per-pixel amplitude image `|u|`.
    pub fn amplitude(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm()).collect()
    }

    /// The per-pixel phase image `arg(u)` in `(-π, π]`.
    pub fn phase(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.arg()).collect()
    }

    /// Total optical energy `Σ|u|²`.
    pub fn total_energy(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Returns a phase-only copy: every sample normalized to unit amplitude
    /// (zero samples stay zero). This models an ideal phase-type SLM, the
    /// display technology the GSW algorithm targets.
    pub fn to_phase_only(&self) -> Field {
        let data = self
            .data
            .iter()
            .map(|z| {
                let r = z.norm();
                if r > 0.0 {
                    z.scale(1.0 / r)
                } else {
                    Complex64::ZERO
                }
            })
            .collect();
        Field { rows: self.rows, cols: self.cols, config: self.config, data }
    }

    /// Adds another field sample-wise (`self += other`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn accumulate(&mut self, other: &Field) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "cannot accumulate fields of different shapes"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Scales every sample by a real factor.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v = v.scale(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let cfg = OpticalConfig::new(633e-9, 6.4e-6);
        assert!((cfg.wavenumber() - 2.0 * std::f64::consts::PI / 633e-9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "wavelength")]
    fn rejects_bad_wavelength() {
        OpticalConfig::new(0.0, 8e-6);
    }

    #[test]
    #[should_panic(expected = "pitch")]
    fn rejects_bad_pitch() {
        OpticalConfig::new(532e-9, f64::NAN);
    }

    #[test]
    fn zeros_and_indexing() {
        let mut f = Field::zeros(3, 5, OpticalConfig::default());
        assert_eq!(f.rows(), 3);
        assert_eq!(f.cols(), 5);
        assert_eq!(f.len(), 15);
        assert!(!f.is_empty());
        f.set(2, 4, Complex64::new(1.0, 1.0));
        assert_eq!(f.at(2, 4), Complex64::new(1.0, 1.0));
        assert_eq!(f.intensity_at(2, 4), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        Field::zeros(2, 2, OpticalConfig::default()).at(2, 0);
    }

    #[test]
    fn from_amplitude_has_zero_phase() {
        let f = Field::from_amplitude(1, 3, OpticalConfig::default(), &[0.0, 1.0, 2.0]);
        assert_eq!(f.phase(), vec![0.0, 0.0, 0.0]);
        assert_eq!(f.amplitude(), vec![0.0, 1.0, 2.0]);
        assert_eq!(f.total_energy(), 5.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_data_length_mismatch_panics() {
        Field::from_data(2, 2, OpticalConfig::default(), vec![Complex64::ZERO; 3]);
    }

    #[test]
    fn physical_extent() {
        let f = Field::zeros(100, 200, OpticalConfig::new(532e-9, 8e-6));
        assert!((f.physical_width() - 1.6e-3).abs() < 1e-12);
        assert!((f.physical_height() - 0.8e-3).abs() < 1e-12);
    }

    #[test]
    fn phase_only_preserves_phase_and_normalizes() {
        let mut f = Field::zeros(1, 2, OpticalConfig::default());
        f.set(0, 0, Complex64::from_polar(3.0, 0.5));
        let p = f.to_phase_only();
        assert!((p.at(0, 0).norm() - 1.0).abs() < 1e-12);
        assert!((p.at(0, 0).arg() - 0.5).abs() < 1e-12);
        assert_eq!(p.at(0, 1), Complex64::ZERO); // zero stays zero
    }

    #[test]
    fn accumulate_and_scale() {
        let cfg = OpticalConfig::default();
        let mut a = Field::from_amplitude(1, 2, cfg, &[1.0, 2.0]);
        let b = Field::from_amplitude(1, 2, cfg, &[0.5, 0.5]);
        a.accumulate(&b);
        assert_eq!(a.amplitude(), vec![1.5, 2.5]);
        a.scale(2.0);
        assert_eq!(a.amplitude(), vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn accumulate_shape_mismatch_panics() {
        let cfg = OpticalConfig::default();
        let mut a = Field::zeros(2, 2, cfg);
        a.accumulate(&Field::zeros(2, 3, cfg));
    }
}
