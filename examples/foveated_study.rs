//! Foveated-rendering sensitivity study: how hard can Inter-Holo's α be
//! pushed before quality drops below what AR applications tolerate?
//!
//! Reproduces the paper's Fig 10b trade-off, and first shows the user-level
//! behaviour the scheme relies on — Fig 3b's gaze temporal locality.
//!
//! Run with: `cargo run --release --example foveated_study`

use holoar::core::{evaluation, quality, ExecutionContext, HoloArConfig, Planner, Scheme};
use holoar::gpusim::Device;
use holoar::metrics::ACCEPTABLE_PSNR_DB;
use holoar::sensors::objectron::VideoCategory;
use holoar::sensors::stats::gaze_study;

fn main() {
    // --- The behavioural premise: gaze stays put ---------------------------
    println!("gaze temporal locality (10 s @ 30 Hz, 5° radius, 1 s windows):");
    for user in gaze_study(11, 10.0) {
        println!(
            "  User{}: {:.0}% of samples within the running region of focus",
            user.user,
            user.locality * 100.0
        );
    }
    println!("  -> a tracked 5° region of focus is stable enough to plan by\n");

    // --- The α sweep: quality vs plane budget -----------------------------
    let alphas = [0.125, 0.25, 0.375, 0.5, 0.75];
    println!("alpha sweep (Inter-Intra-Holo), quality path:");
    println!("{:<8} {:>14} {:>18}", "alpha", "mean PSNR dB", "planes/object");
    for point in quality::alpha_sweep(&alphas, 3, 11, &ExecutionContext::serial()) {
        println!(
            "{:<8.3} {:>14.1} {:>18.1} {}",
            point.alpha,
            point.mean_psnr,
            point.mean_planes,
            if point.mean_psnr >= ACCEPTABLE_PSNR_DB { "" } else { "  <- below 30 dB" }
        );
    }

    // --- And the performance side of the same sweep ------------------------
    println!("\nalpha sweep, performance path (shoe video, 80 frames):");
    println!("{:<8} {:>12} {:>12} {:>14}", "alpha", "latency ms", "power W", "energy mJ");
    let mut device = Device::xavier();
    for &alpha in &alphas {
        let config = HoloArConfig::for_scheme(Scheme::InterIntraHolo).with_alpha(alpha);
        let mut planner = Planner::new(config).expect("valid configuration");
        let result = evaluation::evaluate_with_planner(
            &mut device,
            &mut planner,
            VideoCategory::Shoe,
            80,
            11,
        );
        println!(
            "{:<8.3} {:>12.1} {:>12.2} {:>14.0}",
            alpha,
            result.mean_latency * 1e3,
            result.mean_power,
            result.mean_energy * 1e3
        );
    }
    println!("\nThe paper settles on alpha = 0.5: substantial savings, quality intact.");
}
