//! Renders every virtual object's hologram and displays its numerical
//! reconstruction as ASCII art, full-budget next to approximated — the
//! quality loss HoloAR trades for energy, made visible in a terminal.
//!
//! Run with: `cargo run --release --example hologram_gallery`

use holoar::optics::{algorithm1, reconstruct, ExecutionContext, OpticalConfig, Propagator, VirtualObject};

const RAMP: &[u8] = b" .:-=+*#%@";

/// Maps an intensity image to ASCII (gamma-compressed for terminal
/// visibility).
fn ascii(image: &[f64], rows: usize, cols: usize) -> String {
    let peak = image.iter().cloned().fold(0.0, f64::max).max(f64::MIN_POSITIVE);
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            let v = (image[r * cols + c] / peak).powf(0.45);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn side_by_side(a: &str, b: &str, gap: &str) -> String {
    a.lines()
        .zip(b.lines())
        .map(|(l, r)| format!("{l}{gap}{r}\n"))
        .collect()
}

fn main() {
    let optics = OpticalConfig::default();
    let n = 40;
    let z = 0.006;
    let mut prop = Propagator::new();
    let ctx = ExecutionContext::serial();

    for object in VirtualObject::ALL {
        let depthmap = object.render(n, n, z, 0.0025);
        let full = algorithm1::depthmap_hologram(&depthmap, 16, optics, &ctx);
        let approx = algorithm1::depthmap_hologram(&depthmap, 3, optics, &ctx);
        let img_full = reconstruct::reconstruct_intensity(&full.hologram, z, &mut prop);
        let img_approx = reconstruct::reconstruct_intensity(&approx.hologram, z, &mut prop);
        println!(
            "=== {} ===   left: 16 depth planes   right: 3 depth planes",
            object.name()
        );
        println!(
            "{}",
            side_by_side(&ascii(&img_full, n, n), &ascii(&img_approx, n, n), "   ")
        );
    }
    println!("Approximated holograms keep the silhouette; fine depth detail softens —");
    println!("acceptable in the periphery or at distance, which is exactly where");
    println!("HoloAR applies them.");
}
