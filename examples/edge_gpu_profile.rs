//! Profiling the hologram workload on the simulated edge GPU, the way §3 of
//! the paper profiles it with NVPROF on the Jetson: per-kernel utilization,
//! stall reasons, cache behaviour, the plane-count latency sweep (Fig 4b)
//! and the power-rail breakdown (Fig 8a).
//!
//! Run with: `cargo run --release --example edge_gpu_profile`

use holoar::gpusim::hologram_kernels::{self, HologramJob};
use holoar::gpusim::{calibration, Activity, Device, Profiler};

fn main() {
    let mut device = Device::xavier();
    println!(
        "device: {} SMs x {} cores @ {:.2} GHz (Jetson-AGX-Xavier-class)\n",
        device.config().sm_count,
        device.config().sm.cores,
        device.config().clock_hz / 1e9
    );

    // --- §3: profile the 16-plane hologram --------------------------------
    let mut profiler = Profiler::new();
    let kernels = hologram_kernels::job_kernels(&HologramJob::full(16));
    for stats in device.execute_all(&kernels) {
        profiler.record(&stats);
    }
    println!("{}", profiler.report());

    // --- Fig 4b: latency vs depth planes -----------------------------------
    println!("latency vs depth planes (512², 5 GSW iterations):");
    println!("{:<8} {:>12} {:>12} {:>12}", "planes", "forward ms", "backward ms", "total ms");
    for planes in [2u32, 4, 8, 16, 32] {
        let (fwd, bwd) = hologram_kernels::step_latencies(
            &mut device,
            calibration::HOLOGRAM_PIXELS,
            planes,
        );
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1}",
            planes,
            fwd * 1e3,
            bwd * 1e3,
            (fwd + bwd) * 1e3
        );
    }
    println!(
        "\n16 planes ≈ {:.0} ms — the paper's 341.7 ms anchor and its ~10x real-time gap.",
        hologram_kernels::run_job(&mut device, &HologramJob::full(16)).latency * 1e3
    );

    // --- Fig 8a: power rails vs planes --------------------------------------
    let power = device.config().power;
    println!("\npower rails vs depth planes (INA3221-style):");
    println!("{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}", "planes", "SoC", "CPU", "GPU", "Mem", "total");
    for planes in [2u32, 4, 8, 12, 16] {
        let rails = power.rails(Activity::for_hologram(planes as f64, &power));
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            planes,
            rails.soc,
            rails.cpu,
            rails.gpu,
            rails.mem,
            rails.total()
        );
    }
    println!("\nSoC/CPU flat, GPU/Mem growing with planes — the Fig 8a breakdown shape.");
}
