//! First-person view: what the AR user actually sees, composed from every
//! object's hologram at its planned budget — baseline versus HoloAR side by
//! side, with the gaze marker showing where the fovea rests.
//!
//! Run with: `cargo run --release --example first_person`

use holoar::core::{render_view, ExecutionContext, HoloArConfig, Planner, Scheme};
use holoar::sensors::angles::{deg, AngularPoint};
use holoar::sensors::objectron::{Frame, ObjectAnnotation};
use holoar::sensors::pose::PoseEstimate;

const RAMP: &[u8] = b" .:-=+*#%@";

fn ascii(pixels: &[f64], rows: usize, cols: usize, gaze_px: (usize, usize)) -> Vec<String> {
    let peak = pixels.iter().cloned().fold(0.0, f64::max).max(f64::MIN_POSITIVE);
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| {
                    if (r, c) == gaze_px {
                        '+'
                    } else {
                        let v = (pixels[r * cols + c] / peak).powf(0.5);
                        RAMP[((v * (RAMP.len() - 1) as f64).round() as usize)
                            .min(RAMP.len() - 1)] as char
                    }
                })
                .collect()
        })
        .collect()
}

fn main() {
    // A desk scene: a near book (attended), a far planet model on a shelf,
    // and a cup at the edge of view.
    let objects = vec![
        ObjectAnnotation {
            track_id: 1, // Rock-shaped stand-in for the book
            direction: AngularPoint::new(deg(-6.0), deg(-3.0)),
            distance: 0.5,
            size: 0.28,
        },
        ObjectAnnotation {
            track_id: 3, // Planet
            direction: AngularPoint::new(deg(10.0), deg(6.0)),
            distance: 1.8,
            size: 0.30,
        },
        ObjectAnnotation {
            track_id: 5, // Dice-shaped cup stand-in
            direction: AngularPoint::new(deg(17.0), deg(-8.0)),
            distance: 0.9,
            size: 0.16,
        },
    ];
    let frame = Frame { index: 0, objects };
    let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };
    let gaze = AngularPoint::new(deg(-6.0), deg(-3.0)); // on the book
    let window = pose.viewing_window();
    let (rows, cols) = (26, 52);
    // Gaze marker position in viewport pixels.
    let gaze_px = (
        (((-(gaze.elevation) + window.height / 2.0) / window.height) * rows as f64) as usize,
        (((gaze.azimuth + window.width / 2.0) / window.width) * cols as f64) as usize,
    );

    let ctx = ExecutionContext::serial();
    let mut panels = Vec::new();
    let mut captions = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::InterIntraHolo] {
        let mut planner = Planner::new(HoloArConfig::for_scheme(scheme)).unwrap();
        let plan = planner.plan_frame(&frame, &pose, gaze, 0.0044);
        let view = render_view(&plan.items, &window, rows, cols, &ctx);
        panels.push(ascii(&view.pixels, rows, cols, gaze_px));
        let budgets: Vec<String> = plan.items.iter().map(|i| i.planes.to_string()).collect();
        captions.push(format!(
            "{}: {} planes total (per object: {})",
            scheme.name(),
            plan.total_planes(),
            budgets.join("/")
        ));
    }

    println!("{:<width$}   {}", captions[0], captions[1], width = cols);
    println!("{:-<width$}   {:-<width$}", "", "", width = cols);
    for (l, r) in panels[0].iter().zip(&panels[1]) {
        println!("{l}   {r}");
    }
    println!("\n'+' marks the gaze. Under HoloAR the attended book keeps its budget while");
    println!("the far planet and peripheral cup drop to a few planes — the right panel");
    println!("costs a fraction of the left one to compute.");
}
