//! The paper's Fig 1a scenario: an AR user watches traffic while the headset
//! replaces each physical car with a virtual hologram, in real time, on a
//! battery.
//!
//! This example runs a synthetic "highway" session (far, large, fast-ish
//! objects — bike-video-like statistics) under all four configurations and
//! reports what the user experiences: frame rate, power draw and how long
//! the battery lasts.
//!
//! Run with: `cargo run --release --example ar_driving`

use holoar::core::{evaluation, Scheme};
use holoar::gpusim::Device;
use holoar::pipeline::Battery;
use holoar::sensors::objectron::VideoCategory;

fn main() {
    let frames = 150;
    let seed = 2026;
    println!("AR driving session: {frames} frames of highway traffic (bike-like statistics)\n");

    let mut device = Device::xavier();
    let battery = Battery::headset();
    let mut baseline_latency = None;

    println!(
        "{:<18} {:>8} {:>9} {:>10} {:>10} {:>9}",
        "config", "fps", "power W", "energy mJ", "battery h", "speedup"
    );
    for scheme in Scheme::ALL {
        let result =
            evaluation::evaluate_video(&mut device, VideoCategory::Bike, scheme, frames, seed);
        let base = *baseline_latency.get_or_insert(result.mean_latency);
        println!(
            "{:<18} {:>8.2} {:>9.2} {:>10.0} {:>10.1} {:>8.2}x",
            scheme.name(),
            1.0 / result.mean_latency,
            result.mean_power,
            result.mean_energy * 1e3,
            battery.runtime_hours(result.mean_power),
            base / result.mean_latency
        );
    }

    println!("\nNow the same user at a desk full of small objects (shoe-like statistics),");
    println!("where HoloAR has the most room to approximate:\n");
    let mut baseline_latency = None;
    println!(
        "{:<18} {:>8} {:>9} {:>10} {:>10} {:>9}",
        "config", "fps", "power W", "energy mJ", "battery h", "speedup"
    );
    for scheme in Scheme::ALL {
        let result =
            evaluation::evaluate_video(&mut device, VideoCategory::Shoe, scheme, frames, seed);
        let base = *baseline_latency.get_or_insert(result.mean_latency);
        println!(
            "{:<18} {:>8.2} {:>9.2} {:>10.0} {:>10.1} {:>8.2}x",
            scheme.name(),
            1.0 / result.mean_latency,
            result.mean_power,
            result.mean_energy * 1e3,
            battery.runtime_hours(result.mean_power),
            base / result.mean_latency
        );
    }

    println!("\nThe paper's Fig 7 pattern: large lone objects (bike) gain the least,");
    println!("cluttered scenes of small objects (shoe) gain the most.");
}
