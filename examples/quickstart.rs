//! Quickstart: generate a hologram of a virtual object, approximate it, and
//! measure what the approximation costs in quality and buys in compute.
//!
//! Run with: `cargo run --release --example quickstart`

use holoar::core::{quality, HoloArConfig};
use holoar::gpusim::{hologram_kernels, Device, HologramJob};
use holoar::metrics::ACCEPTABLE_PSNR_DB;
use holoar::optics::{algorithm1, reconstruct, ExecutionContext, OpticalConfig, Propagator, VirtualObject};
use holoar::sensors::angles::AngularPoint;
use holoar::sensors::objectron::ObjectAnnotation;

fn main() {
    // --- 1. A virtual object and its depthmap -----------------------------
    let optics = OpticalConfig::default();
    let ctx = ExecutionContext::serial();
    let depthmap = VirtualObject::Planet.render(64, 64, 0.006, 0.003);
    println!(
        "Planet depthmap: {} lit pixels, depth range {:?} m",
        depthmap.lit_pixel_count(),
        depthmap.depth_range().unwrap()
    );

    // --- 2. The full 16-plane hologram (Algorithm 1) ----------------------
    let full = algorithm1::depthmap_hologram(&depthmap, 16, optics, &ctx);
    println!(
        "16-plane hologram: {} propagations, {} intra-block syncs",
        full.stats.total_propagations(),
        full.stats.intra_block_syncs
    );

    // --- 3. Numerical reconstruction --------------------------------------
    let mut prop = Propagator::new();
    let image = reconstruct::reconstruct_intensity(&full.hologram, 0.006, &mut prop);
    let peak = image.iter().cloned().fold(0.0, f64::max);
    println!("reconstruction at 6 mm: peak intensity {peak:.3}");

    // --- 4. What does approximation cost optically? -----------------------
    let object = ObjectAnnotation {
        track_id: 3, // maps to the Planet hologram
        direction: AngularPoint::CENTER,
        distance: 0.6,
        size: 0.25,
    };
    let config = HoloArConfig::default();
    println!("\nplane budget -> PSNR vs the 16-plane baseline:");
    for planes in [12u32, 8, 4, 2] {
        let psnr = quality::object_psnr(&object, planes, &config, &ctx);
        println!(
            "  {planes:>2} planes: {psnr:>5.1} dB {}",
            if psnr >= ACCEPTABLE_PSNR_DB { "(acceptable for AR)" } else { "" }
        );
    }

    // --- 5. And what does it buy on the edge GPU? -------------------------
    let mut device = Device::xavier();
    println!("\nplane budget -> modeled edge-GPU cost (512², 5 GSW iterations):");
    let baseline = hologram_kernels::run_job(&mut device, &HologramJob::full(16));
    for planes in [16u32, 8, 4] {
        let job = hologram_kernels::run_job(&mut device, &HologramJob::full(planes));
        println!(
            "  {planes:>2} planes: {:>6.1} ms, {:.2} W, {:.0} mJ ({:.2}x speedup)",
            job.latency * 1e3,
            job.rails.total(),
            job.energy * 1e3,
            baseline.latency / job.latency
        );
    }
    println!("\nHoloAR's whole premise in one line: far/unattended objects can drop");
    println!("planes (right column shrinks) long before the PSNR column hurts.");
}
