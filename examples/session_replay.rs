//! Record → save → reload → replay: reproducible sessions with degraded
//! sensors and the motion guard.
//!
//! Records a sensing session to a trace file, reloads it, and replays it
//! through the planner three ways: normally, with a simulated eye-tracker
//! dropout, and with the §5.4 motion guard suspending attention-based
//! approximation during saccades.
//!
//! Run with: `cargo run --release --example session_replay`

use holoar::core::{
    executor, quality, ExecutionContext, GazeInput, HoloArConfig, MotionGuard, Planner,
    PoseInput, Scheme, SensorSample,
};
use holoar::gpusim::Device;
use holoar::sensors::objectron::VideoCategory;
use holoar::sensors::trace::SessionTrace;

fn main() {
    // --- Record and persist -------------------------------------------------
    let trace = SessionTrace::record(VideoCategory::Shoe, 90, 7);
    let path = std::env::temp_dir().join("holoar_session.trace");
    std::fs::write(&path, trace.serialize()).expect("trace file is writable");
    println!("recorded {} frames -> {}", trace.len(), path.display());

    let reloaded =
        SessionTrace::parse(&std::fs::read_to_string(&path).expect("trace file readable"))
            .expect("trace round-trips");
    assert_eq!(reloaded, trace);
    println!("reloaded losslessly ({} bytes)\n", trace.serialize().len());

    // --- Replay under three conditions --------------------------------------
    let config = HoloArConfig::for_scheme(Scheme::InterIntraHolo);
    let ctx = ExecutionContext::serial();
    for (name, dropout, guard_on) in [
        ("all sensors healthy", false, false),
        ("eye tracker drops every 3rd frame", true, false),
        ("motion guard active", false, true),
    ] {
        let mut device = Device::xavier();
        let mut planner = Planner::new(config).expect("valid configuration");
        let mut guard = MotionGuard::new(30.0);
        let mut total = 0.0;
        let mut energy = 0.0;
        let mut planes = 0u64;
        let mut frame_psnr_sum = 0.0;
        let mut frame_psnr_count = 0u32;
        for (i, tf) in reloaded.frames.iter().enumerate() {
            let saccade = guard.observe(tf.gaze);
            let gaze = if (dropout && i % 3 == 0) || (guard_on && saccade) {
                GazeInput::Lost // tracker dropout or stale-RoF hold
            } else {
                GazeInput::tracked(tf.gaze)
            };
            let sensors = SensorSample { pose: PoseInput::Tracked(tf.pose), gaze };
            let plan = planner.plan_frame_with(&tf.frame, &sensors);
            if let Some(p) = quality::frame_psnr(&plan.items, &config, &ctx) {
                if p.is_finite() {
                    frame_psnr_sum += p;
                    frame_psnr_count += 1;
                }
            }
            let perf = executor::execute_plan(&mut device, &plan);
            total += perf.latency;
            energy += perf.energy;
            planes += perf.planes as u64;
        }
        let n = reloaded.len() as f64;
        println!("{name}:");
        println!(
            "  latency {:.1} ms/frame, energy {:.0} mJ/frame, {:.1} planes/frame{}",
            total / n * 1e3,
            energy / n * 1e3,
            planes as f64 / n,
            if frame_psnr_count > 0 {
                format!(
                    ", lossy-frame PSNR {:.1} dB",
                    frame_psnr_sum / frame_psnr_count as f64
                )
            } else {
                String::new()
            }
        );
    }
    println!("\nSensor loss costs performance (more planes computed), never quality —");
    println!("the planner falls back toward the baseline when it cannot see.");
}
