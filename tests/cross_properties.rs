//! Cross-crate property tests: invariants that must hold for *any* scene,
//! spanning planner (core), executor (core+gpusim) and the optics/metrics
//! quality stack.

use holoar::core::{executor, HoloArConfig, Planner, Scheme};
use holoar::gpusim::Device;
use holoar::metrics::{psnr, Image};
use holoar::optics::{algorithm1, ExecutionContext, OpticalConfig, VirtualObject};
use holoar::sensors::angles::{deg, AngularPoint};
use holoar::sensors::objectron::{Frame, ObjectAnnotation};
use holoar::sensors::pose::PoseEstimate;
use proptest::prelude::*;

fn arb_object() -> impl Strategy<Value = ObjectAnnotation> {
    (0u64..50, -30.0f64..30.0, -20.0f64..20.0, 0.2f64..3.0, 0.05f64..1.6).prop_map(
        |(track_id, az, el, distance, size)| ObjectAnnotation {
            track_id,
            direction: AngularPoint::new(deg(az), deg(el)),
            distance,
            size,
        },
    )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop::collection::vec(arb_object(), 0..6)
        .prop_map(|objects| Frame { index: 0, objects })
}

fn pose() -> PoseEstimate {
    PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every scene and gaze, plane budgets respect the global bounds and
    /// the scheme ordering: Inter-Intra never exceeds Inter or Intra, which
    /// never exceed Baseline, per object.
    #[test]
    fn scheme_ordering_holds_for_any_scene(
        frame in arb_frame(),
        gaze_az in -20.0f64..20.0,
        gaze_el in -15.0f64..15.0,
    ) {
        let gaze = AngularPoint::new(deg(gaze_az), deg(gaze_el));
        let mut plans = Vec::new();
        for scheme in Scheme::ALL {
            let mut planner = Planner::new(HoloArConfig::for_scheme(scheme)).unwrap();
            plans.push(planner.plan_frame(&frame, &pose(), gaze, 0.0044));
        }
        let [base, inter, intra, both] = <[_; 4]>::try_from(plans).unwrap();
        for i in 0..frame.objects.len() {
            let (b, n, t, c) =
                (base.items[i].planes, inter.items[i].planes, intra.items[i].planes, both.items[i].planes);
            for p in [b, n, t, c] {
                prop_assert!(p == 0 || (2..=16).contains(&p), "budget {p} out of bounds");
            }
            // Skipping (outside window) is scheme-independent.
            prop_assert_eq!(b == 0, c == 0);
            if b > 0 {
                prop_assert!(n <= b, "inter {n} > baseline {b}");
                prop_assert!(t <= b, "intra {t} > baseline {b}");
                prop_assert!(c <= n.min(t), "combined {c} > min(inter {n}, intra {t})");
            }
        }
    }

    /// Executing any plan yields consistent accounting: energy equals
    /// average power times latency, and everything is finite/non-negative.
    #[test]
    fn executor_accounting_is_consistent(frame in arb_frame(), scheme_idx in 0usize..4) {
        let scheme = Scheme::ALL[scheme_idx];
        let mut planner = Planner::new(HoloArConfig::for_scheme(scheme)).unwrap();
        let plan = planner.plan_frame(&frame, &pose(), AngularPoint::CENTER, 0.0044);
        let mut device = Device::xavier();
        let perf = executor::execute_plan(&mut device, &plan);
        prop_assert!(perf.latency > 0.0 && perf.latency.is_finite());
        prop_assert!(perf.energy > 0.0 && perf.energy.is_finite());
        prop_assert!((perf.energy - perf.avg_power * perf.latency).abs() < 1e-9 * perf.energy.max(1.0));
        prop_assert!(perf.jobs <= frame.objects.len());
    }

    /// More planes never cost less on the device (latency monotonicity).
    #[test]
    fn device_latency_is_monotone_in_planes(a in 1u32..24, b in 1u32..24) {
        use holoar::gpusim::{hologram_kernels, HologramJob};
        let (lo, hi) = (a.min(b), a.max(b));
        let mut device = Device::xavier();
        let t_lo = hologram_kernels::run_job(&mut device, &HologramJob::full(lo)).latency;
        let t_hi = hologram_kernels::run_job(&mut device, &HologramJob::full(hi)).latency;
        prop_assert!(t_hi >= t_lo);
    }

    /// The optics + metrics stack: a hologram of any virtual object carries
    /// energy, and PSNR against itself is infinite.
    #[test]
    fn hologram_quality_identities(obj_idx in 0usize..6, planes in 2usize..10) {
        let optics = OpticalConfig::default();
        let depthmap = VirtualObject::ALL[obj_idx].render(24, 24, 0.006, 0.002);
        let result = algorithm1::depthmap_hologram(&depthmap, planes, optics, &ExecutionContext::serial());
        prop_assert!(result.hologram.total_energy() > 0.0);
        prop_assert_eq!(result.stats.plane_count, planes);

        let img = Image::new(24, 24, result.hologram.intensity()).unwrap();
        prop_assert!(psnr(&img, &img).unwrap().is_infinite());
    }
}

#[test]
fn reuse_never_happens_on_first_sight() {
    // Deterministic sanity check outside proptest: a fresh planner cannot
    // reuse anything on frame zero.
    let frame = Frame {
        index: 0,
        objects: vec![ObjectAnnotation {
            track_id: 9,
            direction: AngularPoint::CENTER,
            distance: 0.7,
            size: 0.3,
        }],
    };
    for scheme in Scheme::ALL {
        let mut planner = Planner::new(HoloArConfig::for_scheme(scheme)).unwrap();
        let plan = planner.plan_frame(&frame, &pose(), AngularPoint::CENTER, 0.0);
        assert!(!plan.items[0].reused);
    }
}
