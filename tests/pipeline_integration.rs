//! Pipeline-level integration: the Fig 2 bottleneck analysis and the QoS
//! improvement HoloAR delivers when its hologram latencies are slotted into
//! the frame loop.

use holoar::core::{evaluation, Scheme};
use holoar::gpusim::Device;
use holoar::pipeline::{characterize, run_loop, Battery, FrameLatencies, TaskKind};
use holoar::sensors::objectron::VideoCategory;

#[test]
fn hologram_is_the_pipeline_bottleneck() {
    let rows = characterize(&mut Device::xavier());
    let worst = rows.iter().max_by(|a, b| a.gap().total_cmp(&b.gap())).unwrap();
    assert_eq!(worst.kind, TaskKind::Hologram);
    assert!(worst.gap() > 9.0, "gap {:.1}", worst.gap());
    // And the paper's precise stage latencies are reproduced.
    for r in &rows {
        match r.kind {
            TaskKind::PoseEstimate => assert!((r.measured - 0.01375).abs() < 1e-9),
            TaskKind::EyeTrack => assert!((r.measured - 0.0044).abs() < 1e-9),
            TaskKind::SceneReconstruct => assert!((r.measured - 0.120).abs() < 1e-9),
            TaskKind::Hologram => {
                assert!((r.measured - 0.3417).abs() / 0.3417 < 0.05, "{}", r.measured)
            }
        }
    }
}

#[test]
fn holoar_roughly_triples_pipeline_fps() {
    // Feed per-frame hologram latencies from the evaluation into the frame
    // loop and compare achieved fps.
    let mut device = Device::xavier();
    let fps_for = |scheme: Scheme, device: &mut Device| {
        let result =
            evaluation::evaluate_video(device, VideoCategory::Shoe, scheme, 60, 11);
        let report = run_loop(60, |_| FrameLatencies {
            pose: 0.01375,
            eye: if scheme.uses_eye_tracking() { 0.0044 } else { 0.0 },
            scene: 0.120,
            // evaluation latency already includes pose/eye/hologram; isolate
            // the hologram+overhead part by subtracting the charged sensing.
            hologram: result.mean_latency
                - 0.01375
                - if scheme.uses_eye_tracking() { 0.0044 } else { 0.0 },
        });
        report.fps
    };
    let base_fps = fps_for(Scheme::Baseline, &mut device);
    let holoar_fps = fps_for(Scheme::InterIntraHolo, &mut device);
    assert!(base_fps < 3.0, "baseline fps {base_fps:.2} should be far from real-time");
    assert!(
        holoar_fps / base_fps > 2.0,
        "HoloAR fps {holoar_fps:.2} should be well over 2x baseline {base_fps:.2}"
    );
}

#[test]
fn battery_life_extends_with_energy_savings() {
    let mut device = Device::xavier();
    let base =
        evaluation::evaluate_video(&mut device, VideoCategory::Cup, Scheme::Baseline, 60, 3);
    let holoar = evaluation::evaluate_video(
        &mut device,
        VideoCategory::Cup,
        Scheme::InterIntraHolo,
        60,
        3,
    );
    let battery = Battery::headset();
    let gain = battery.runtime_gain(base.mean_power, holoar.mean_power);
    assert!(gain > 1.2, "battery runtime gain {gain:.2} should be substantial");
    // Energy-per-frame tells the same story more strongly (power and time
    // both drop).
    assert!(holoar.mean_energy < 0.45 * base.mean_energy);
}

#[test]
fn scene_reconstruction_cadence_bounds_its_cost() {
    // At a 1-in-3 cadence the 120 ms stage adds ~40 ms to the mean frame.
    let with = run_loop(300, |_| FrameLatencies {
        pose: 0.0138,
        eye: 0.0044,
        scene: 0.120,
        hologram: 0.050,
    });
    let without = run_loop(300, |_| FrameLatencies {
        pose: 0.0138,
        eye: 0.0044,
        scene: 0.0,
        hologram: 0.050,
    });
    let delta = with.mean_frame_latency - without.mean_frame_latency;
    assert!((delta - 0.040).abs() < 0.002, "cadence-amortized cost {delta:.3}");
}
