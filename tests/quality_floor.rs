//! Quality-path integration: the approximation schemes must not push
//! reconstruction quality below what AR applications tolerate (§5.4), and
//! quality must respond to the knobs in the expected direction.

use holoar::core::{quality, ExecutionContext, HoloArConfig, Scheme};
use holoar::sensors::angles::AngularPoint;
use holoar::sensors::objectron::{ObjectAnnotation, VideoCategory};

fn object(track_id: u64, distance: f64, size: f64) -> ObjectAnnotation {
    ObjectAnnotation { track_id, direction: AngularPoint::CENTER, distance, size }
}

#[test]
fn inter_intra_keeps_acceptable_average_quality() {
    // Fig 10a: the paper reports ~30.7 dB average under Inter-Intra-Holo.
    let config = HoloArConfig::for_scheme(Scheme::InterIntraHolo);
    let mut sum = 0.0;
    let mut count = 0;
    for &v in &VideoCategory::ALL {
        if let Some(p) = quality::video_quality(v, config, 3, 42, &ExecutionContext::serial()).mean_psnr_capped() {
            sum += p;
            count += 1;
        }
    }
    let mean = sum / count as f64;
    assert!(
        (26.0..40.0).contains(&mean),
        "fleet mean PSNR {mean:.1} dB should be near the paper's 30.7 dB"
    );
}

#[test]
fn psnr_ladder_is_monotone_for_every_virtual_object() {
    let config = HoloArConfig::default();
    for track_id in 0..6u64 {
        let obj = object(track_id, 0.6, 0.25);
        let p12 = quality::object_psnr(&obj, 12, &config, &ExecutionContext::serial());
        let p6 = quality::object_psnr(&obj, 6, &config, &ExecutionContext::serial());
        let p2 = quality::object_psnr(&obj, 2, &config, &ExecutionContext::serial());
        // Allow a small tolerance: quantization ties can leave neighbouring
        // budgets within fractions of a dB of each other.
        assert!(
            p12 >= p6 - 0.5 && p6 >= p2 - 0.5,
            "object {track_id}: PSNR ladder not monotone ({p12:.1} / {p6:.1} / {p2:.1})"
        );
        assert!(p12 > p2, "object {track_id}: extremes must differ ({p12:.1} vs {p2:.1})");
        assert!(p2 > 10.0, "object {track_id}: even 2 planes should stay above 10 dB, got {p2:.1}");
    }
}

#[test]
fn farther_objects_tolerate_approximation_better() {
    // The Intra-Holo premise: the same plane cut hurts a near, deep object
    // more than a far, shallow one.
    let config = HoloArConfig::default();
    let near_deep = object(3, 0.45, 0.40);
    let far_shallow = object(3, 2.0, 0.15);
    let near_psnr = quality::object_psnr(&near_deep, 4, &config, &ExecutionContext::serial());
    let far_psnr = quality::object_psnr(&far_shallow, 4, &config, &ExecutionContext::serial());
    assert!(
        far_psnr > near_psnr,
        "far/shallow ({far_psnr:.1} dB) should beat near/deep ({near_psnr:.1} dB) at 4 planes"
    );
}

#[test]
fn baseline_and_inter_in_rof_are_lossless() {
    // Baseline never approximates; Inter-Holo never approximates attended
    // objects. Both must report infinite PSNR for the full budget.
    let config = HoloArConfig::default();
    let obj = object(1, 0.5, 0.2);
    assert!(quality::object_psnr(&obj, config.full_planes, &config, &ExecutionContext::serial()).is_infinite());
}

#[test]
fn design_points_trade_planes_for_quality_monotonically() {
    let points = quality::design_sweep(&quality::DesignPoint::fig10b_points(), 2, 7, &ExecutionContext::serial());
    // Plane budgets must be non-increasing along the aggressiveness axis.
    for pair in points.windows(2) {
        assert!(
            pair[1].mean_planes <= pair[0].mean_planes + 0.3,
            "planes should shrink along the sweep: {:?}",
            points.iter().map(|p| p.mean_planes).collect::<Vec<_>>()
        );
    }
    // The extremes must actually differ (the knob does something).
    assert!(points[0].mean_planes > points.last().unwrap().mean_planes + 0.5);
}
