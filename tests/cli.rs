//! End-to-end tests of the `holoar` command-line tool, driving the real
//! binary the way a user would.

use std::process::Command;

fn holoar(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_holoar"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = holoar(&["--help"]);
    assert!(ok);
    for word in ["simulate", "trace", "profile", "schemes"] {
        assert!(stdout.contains(word), "help missing '{word}':\n{stdout}");
    }
}

#[test]
fn simulate_reports_the_key_metrics() {
    let (ok, stdout, _) =
        holoar(&["simulate", "--video", "cup", "--scheme", "inter-intra", "--frames", "15"]);
    assert!(ok, "{stdout}");
    for word in ["latency", "power", "energy", "planes", "battery", "vs baseline"] {
        assert!(stdout.contains(word), "simulate missing '{word}':\n{stdout}");
    }
}

#[test]
fn trace_record_info_replay_roundtrip() {
    let dir = std::env::temp_dir().join(format!("holoar_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.trace");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, stderr) = holoar(&[
        "trace", "record", "--video", "book", "--frames", "12", "--seed", "3", "--out", path_str,
    ]);
    assert!(ok, "record failed: {stderr}");
    assert!(stdout.contains("recorded 12 frames"));

    let (ok, stdout, _) = holoar(&["trace", "info", path_str]);
    assert!(ok);
    assert!(stdout.contains("12 frames"));

    let (ok, stdout, _) = holoar(&["trace", "replay", path_str, "--scheme", "intra"]);
    assert!(ok);
    assert!(stdout.contains("replayed 12 frames"));
    assert!(stdout.contains("ms/frame"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_prints_nvprof_style_report() {
    let (ok, stdout, _) = holoar(&["profile", "--planes", "4"]);
    assert!(ok);
    assert!(stdout.contains("sm_utilization"));
    assert!(stdout.contains("hp2dp_forward"));
    assert!(stdout.contains("4 planes"));
}

#[test]
fn bad_inputs_fail_with_useful_errors() {
    let (ok, _, stderr) = holoar(&["simulate", "--video", "spaceship"]);
    assert!(!ok);
    assert!(stderr.contains("unknown video"));

    let (ok, _, stderr) = holoar(&["simulate", "--scheme", "magic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scheme"));

    let (ok, _, stderr) = holoar(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = holoar(&["trace", "info", "/nonexistent/file.trace"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}
