//! Integration tests for the extension features: task-graph scheduling fed
//! by real evaluation latencies, the event-driven timeline, the viewport
//! compositor, trace replay determinism, and the motion/application guards.

use holoar::core::{evaluation, render_view, ExecutionContext, HoloArConfig, MotionGuard, Planner, Scheme};
use holoar::gpusim::timeline::{plane_stream_ops, simulate};
use holoar::gpusim::{Device, DeviceConfig};
use holoar::pipeline::graph::{ar_frame_graph, schedule_frame};
use holoar::sensors::angles::{deg, AngularPoint};
use holoar::sensors::objectron::VideoCategory;
use holoar::sensors::trace::SessionTrace;

#[test]
fn task_graph_fed_by_evaluation_latencies_shows_the_speedup() {
    let mut device = Device::xavier();
    let base =
        evaluation::evaluate_video(&mut device, VideoCategory::Cup, Scheme::Baseline, 40, 5);
    let holoar = evaluation::evaluate_video(
        &mut device,
        VideoCategory::Cup,
        Scheme::InterIntraHolo,
        40,
        5,
    );
    // Feed each configuration's hologram share into the frame graph.
    let hologram_share = |mean_latency: f64| (mean_latency - 0.0138 - 0.0044).max(0.001);
    let slow = schedule_frame(&ar_frame_graph(hologram_share(base.mean_latency), false))
        .expect("valid graph");
    let fast = schedule_frame(&ar_frame_graph(hologram_share(holoar.mean_latency), false))
        .expect("valid graph");
    assert!(slow.makespan / fast.makespan > 1.8, "graph-level speedup should carry over");
    // The GPU stays the dominant resource in both.
    assert!(slow.utilization(holoar::pipeline::graph::Resource::Gpu) > 0.8);
}

#[test]
fn timeline_makespan_is_consistent_with_closed_form_scale() {
    // The event-driven simulator and the closed-form device model measure
    // the same workload; their 16-plane sweeps should agree within tens of
    // percent (the timeline has no drain tails between fused waves).
    let cfg = DeviceConfig::default();
    let timeline = simulate(&plane_stream_ops(512 * 512, 16), &cfg);
    let mut device = Device::xavier();
    let closed_form: f64 = holoar::gpusim::hologram_kernels::step_latencies(
        &mut device,
        512 * 512,
        16,
    )
    .0 / 5.0 // one sweep's forward half (step_latencies runs 5 GSW iterations)
        + holoar::gpusim::hologram_kernels::step_latencies(&mut device, 512 * 512, 16).1 / 5.0;
    let ratio = timeline.makespan / closed_form;
    assert!(
        (0.5..1.5).contains(&ratio),
        "timeline {:.1} ms vs closed-form sweep {:.1} ms",
        timeline.makespan * 1e3,
        closed_form * 1e3
    );
}

#[test]
fn composed_view_dims_with_approximation_but_never_disappears() {
    let mut base_planner = Planner::new(HoloArConfig::for_scheme(Scheme::Baseline)).unwrap();
    let mut holo_planner =
        Planner::new(HoloArConfig::for_scheme(Scheme::InterIntraHolo)).unwrap();
    let frame = holoar::sensors::objectron::FrameGenerator::new(VideoCategory::Book, 3)
        .nth(5)
        .expect("frames stream forever");
    let pose = holoar::sensors::pose::PoseEstimate {
        orientation: AngularPoint::CENTER,
        latency: 0.01375,
    };
    let gaze = frame.objects.first().map(|o| o.direction).unwrap_or(AngularPoint::CENTER);
    let base_plan = base_planner.plan_frame(&frame, &pose, gaze, 0.0);
    let holo_plan = holo_planner.plan_frame(&frame, &pose, gaze, 0.0044);
    let window = pose.viewing_window();
    let base_view = render_view(&base_plan.items, &window, 24, 40, &ExecutionContext::serial());
    let holo_view = render_view(&holo_plan.items, &window, 24, 40, &ExecutionContext::serial());
    // Every object the baseline displays, HoloAR displays too.
    if base_view.total_luminance() > 0.0 {
        assert!(holo_view.total_luminance() > 0.0, "approximation must not blank objects");
    }
}

#[test]
fn trace_replay_is_bit_identical_across_runs() {
    let trace = SessionTrace::record(VideoCategory::Laptop, 30, 99);
    let run = |trace: &SessionTrace| {
        let mut device = Device::xavier();
        let mut planner =
            Planner::new(HoloArConfig::for_scheme(Scheme::InterIntraHolo)).unwrap();
        let mut total = 0.0;
        for tf in &trace.frames {
            let plan = planner.plan_frame(&tf.frame, &tf.pose, tf.gaze, 0.0044);
            total += holoar::core::executor::execute_plan(&mut device, &plan).latency;
        }
        total
    };
    let a = run(&trace);
    let reparsed = SessionTrace::parse(&trace.serialize()).unwrap();
    let b = run(&reparsed);
    assert_eq!(a.to_bits(), b.to_bits(), "replay must be bit-identical");
}

#[test]
fn motion_guard_throttles_saccadic_sessions() {
    // A synthetic saccade-heavy gaze stream: the guard should hold
    // approximation off for a visible fraction of frames.
    let mut guard = MotionGuard::new(30.0);
    let mut held = 0u32;
    let frames = 120u32;
    for i in 0..frames {
        // Saccade every 20 frames, fixation in between.
        let az = if i % 20 == 0 { deg(20.0) * ((i / 20) % 2) as f64 } else { f64::NAN };
        let gaze = if az.is_nan() {
            AngularPoint::new(deg(20.0) * ((i / 20) % 2) as f64, 0.0)
        } else {
            AngularPoint::new(az, 0.0)
        };
        if guard.observe(gaze) {
            held += 1;
        }
    }
    let fraction = held as f64 / frames as f64;
    assert!(
        (0.05..0.5).contains(&fraction),
        "guard held {fraction:.2} of frames; expected a visible minority"
    );
}
