//! End-to-end reproduction bands: the paper's headline numbers (Fig 7,
//! Fig 8b, §5.3) must hold in *shape* — who wins, by roughly what factor —
//! across the full 6-video × 4-scheme matrix.

use holoar::core::{evaluation, Horn8Model, Scheme};
use holoar::gpusim::Device;
use holoar::sensors::objectron::VideoCategory;

fn matrix() -> evaluation::EvaluationMatrix {
    evaluation::evaluate_matrix(&mut Device::xavier(), 120, 42)
}

#[test]
fn fig7b_speedups_land_in_paper_bands() {
    let m = matrix();
    // Paper: 1.15x / 2.42x / 2.68x.
    let inter = m.fleet_speedup(Scheme::InterHolo);
    let intra = m.fleet_speedup(Scheme::IntraHolo);
    let both = m.fleet_speedup(Scheme::InterIntraHolo);
    assert!((1.05..1.35).contains(&inter), "Inter-Holo speedup {inter:.2} vs paper 1.15");
    assert!((2.0..2.9).contains(&intra), "Intra-Holo speedup {intra:.2} vs paper 2.42");
    assert!((2.2..3.1).contains(&both), "Inter-Intra speedup {both:.2} vs paper 2.68");
    // Ordering: combined ≥ intra ≥ inter.
    assert!(both >= intra && intra > inter);
}

#[test]
fn fig7a_power_reductions_land_in_paper_bands() {
    let m = matrix();
    // Paper: 3.86% / 27.72% / 28.95%.
    let inter = m.fleet_power_reduction(Scheme::InterHolo);
    let intra = m.fleet_power_reduction(Scheme::IntraHolo);
    let both = m.fleet_power_reduction(Scheme::InterIntraHolo);
    assert!((0.01..0.08).contains(&inter), "Inter power reduction {inter:.3} vs paper 0.039");
    assert!((0.22..0.33).contains(&intra), "Intra power reduction {intra:.3} vs paper 0.277");
    assert!((0.24..0.35).contains(&both), "combined power reduction {both:.3} vs paper 0.290");
    assert!(both > inter);
}

#[test]
fn fig7c_energy_savings_land_in_paper_bands() {
    let m = matrix();
    // Paper: 18% / 70% / 73%.
    let inter = m.fleet_energy_savings(Scheme::InterHolo);
    let intra = m.fleet_energy_savings(Scheme::IntraHolo);
    let both = m.fleet_energy_savings(Scheme::InterIntraHolo);
    assert!((0.08..0.25).contains(&inter), "Inter energy savings {inter:.2} vs paper 0.18");
    assert!((0.60..0.78).contains(&intra), "Intra energy savings {intra:.2} vs paper 0.70");
    assert!((0.63..0.80).contains(&both), "combined energy savings {both:.2} vs paper 0.73");
    assert!(both > intra && intra > inter);
}

#[test]
fn fig8b_plane_counts_shrink_like_the_paper() {
    let m = matrix();
    // Paper: 23.6 → 19.8 → 7.1 → 6.7.
    let base = m.fleet_mean(Scheme::Baseline, |c| c.mean_planes);
    let inter = m.fleet_mean(Scheme::InterHolo, |c| c.mean_planes);
    let intra = m.fleet_mean(Scheme::IntraHolo, |c| c.mean_planes);
    let both = m.fleet_mean(Scheme::InterIntraHolo, |c| c.mean_planes);
    assert!((17.0..26.0).contains(&base), "baseline planes {base:.1} vs paper 23.6");
    assert!((14.0..22.0).contains(&inter), "inter planes {inter:.1} vs paper 19.8");
    assert!((5.0..9.0).contains(&intra), "intra planes {intra:.1} vs paper 7.1");
    assert!((4.5..8.5).contains(&both), "combined planes {both:.1} vs paper 6.7");
    assert!(base > inter && inter > intra && intra >= both);
}

#[test]
fn per_video_extremes_match_the_paper() {
    // §5.3: shoe gains the most from approximation, bike the least.
    let m = matrix();
    let reduction = |v: VideoCategory| {
        let base = m.cell(v, Scheme::Baseline).unwrap().mean_latency;
        let both = m.cell(v, Scheme::InterIntraHolo).unwrap().mean_latency;
        1.0 - both / base
    };
    let reductions: Vec<(VideoCategory, f64)> =
        VideoCategory::ALL.iter().map(|&v| (v, reduction(v))).collect();
    let best = reductions.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    let worst = reductions.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    assert_eq!(best.0, VideoCategory::Shoe, "best should be shoe, got {:?}", best.0);
    assert!(
        matches!(worst.0, VideoCategory::Bike | VideoCategory::Bottle),
        "worst should be a sparse/large-object video, got {:?}",
        worst.0
    );
    // Paper: shoe 73% / bike 36% latency reduction for Inter-Intra-Holo.
    assert!((0.60..0.85).contains(&best.1), "shoe reduction {:.2} vs paper 0.73", best.1);
    assert!((0.25..0.60).contains(&worst.1), "worst reduction {:.2} vs paper 0.36", worst.1);
}

#[test]
fn horn8_comparison_matches_section_5_3() {
    let m = matrix();
    let horn8 = Horn8Model::default();
    // The paper: HoloAR saves ~25% more of baseline energy than HORN-8.
    let advantage = horn8.holoar_advantage(&m);
    assert!(
        (0.12..0.35).contains(&advantage),
        "HoloAR advantage over HORN-8 {advantage:.2} vs paper ~0.25"
    );
}
