//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! shim reimplements the subset of the criterion API the bench targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock harness: each benchmark is calibrated
//! to a per-sample time budget, timed over `sample_size` samples, and the
//! median time per iteration is printed. There are no plots, no saved
//! baselines and no statistical regression analysis — output goes to
//! stdout, one line per benchmark.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time per measured sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure under an id within the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    /// Median seconds per iteration, filled in by `iter`.
    median_s: f64,
    /// Iterations per sample chosen during calibration.
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times the routine: calibrates an iteration count to the sample
    /// budget, then measures `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the iteration count until a sample is long
        // enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET || iters >= 1 << 20 {
                if elapsed < SAMPLE_BUDGET / 4 && iters < 1 << 20 {
                    iters *= 4;
                }
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_s = samples[samples.len() / 2];
        self.iters_per_sample = iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { median_s: 0.0, iters_per_sample: 0, sample_size };
    f(&mut bencher);
    println!(
        "{label:<48} {:>14}/iter  ({} samples x {} iters)",
        format_time(bencher.median_s),
        sample_size,
        bencher.iters_per_sample
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generates `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this harness has no
            // options, so arguments are accepted and ignored.
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut b = Bencher { median_s: 0.0, iters_per_sample: 0, sample_size: 3 };
        b.iter(|| std::hint::black_box((0..100).sum::<u64>()));
        assert!(b.median_s > 0.0);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("cached_tf", 128).label, "cached_tf/128");
        assert_eq!(BenchmarkId::from_parameter(5).label, "5");
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
