//! The [`Strategy`] trait, the range/tuple implementations, and the
//! `prop_map` / `prop_flat_map` adapters.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty f64 range strategy");
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range strategy");
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range strategy");
                let span = end.wrapping_sub(start) as u64 + 1;
                start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let f = (-3.0f64..7.0).generate(&mut rng);
            assert!((-3.0..7.0).contains(&f));
            let u = (2usize..9).generate(&mut rng);
            assert!((2..9).contains(&u));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
            let inc = (1usize..=3).generate(&mut rng);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1usize..5).prop_flat_map(|n| (0.0f64..1.0).prop_map(move |x| (n, x)));
        for _ in 0..100 {
            let (n, x) = s.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_name("tuple");
        let (a, b, c) = (0u32..4, 0.0f64..1.0, Just(42i64)).generate(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 42);
    }
}
