//! `any::<T>()` support for the types the test suite asks for.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<bool>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Fair coin flips.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bools_eventually_hit_both_values() {
        let mut rng = TestRng::from_name("bool");
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(s.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
