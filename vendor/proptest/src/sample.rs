//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Picks uniformly from a fixed list of options.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_only_listed_values() {
        let mut rng = TestRng::from_name("select");
        let s = select(vec![32u32, 64, 128]);
        for _ in 0..100 {
            assert!([32, 64, 128].contains(&s.generate(&mut rng)));
        }
    }
}
