//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_vecs() {
        let mut rng = TestRng::from_name("vec_exact");
        let v = vec(0.0f64..1.0, 16).generate(&mut rng);
        assert_eq!(v.len(), 16);
    }

    #[test]
    fn ranged_size_vecs() {
        let mut rng = TestRng::from_name("vec_range");
        for _ in 0..200 {
            let v = vec(0u32..10, 1..=5).generate(&mut rng);
            assert!((1..=5).contains(&v.len()));
            let w = vec(0u32..10, 2..7).generate(&mut rng);
            assert!((2..7).contains(&w.len()));
        }
    }
}
