//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! shim reimplements exactly the subset of the proptest API the test suite
//! uses: the [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `any::<bool>()`, [`test_runner::ProptestConfig`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Generation is uniform-random from a deterministic per-test seed (derived
//! from the test name), so failures reproduce run-to-run. There is no
//! shrinking: a failing case panics with the assertion message.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    pub mod prop {
        //! The `prop::` path (`prop::collection::vec`, `prop::sample::select`).
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs `cases` generated inputs through `run_one`, retrying rejected
/// (filtered) cases without counting them. Called by the `proptest!` macro.
///
/// # Panics
///
/// Panics when a case fails or when too many cases in a row are rejected.
pub fn run_property<F>(name: &str, config: &test_runner::ProptestConfig, mut run_one: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = test_runner::TestRng::from_name(name);
    let mut executed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = config.cases.saturating_mul(20).max(1024);
    while executed < config.cases {
        match run_one(&mut rng) {
            Ok(()) => executed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many rejected cases ({rejected}); \
                     loosen the prop_assume! filters"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed after {executed} passing cases: {msg}");
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its generated inputs) rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Filters the current case: a false condition discards it (uncounted)
/// instead of failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_property(
                    ::std::stringify!($name),
                    &config,
                    |rng| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(&($strat), rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
