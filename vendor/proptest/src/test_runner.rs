//! Test-runner types: configuration, case outcomes, and the deterministic
//! RNG that drives generation.

/// How many cases each property runs (the only knob this shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!` and should not count.
    Reject(String),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered) outcome with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic splitmix64 generator; every property seeds one from its
/// test name so runs are reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift reduction; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = TestRng::from_name("f64");
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
